//! Service counters behind `/metrics`.
//!
//! Everything is a relaxed atomic or a short-held mutex: metrics recording
//! sits on the worker hot path and must never serialize the pool. The
//! per-level search timings reuse the `TaneStats::level_times` instrumented
//! in `tane-core` — the service aggregates them across jobs so `/metrics`
//! shows where lattice time actually goes, level by level.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tane_core::TaneStats;
use tane_util::Json;

use crate::cache::CacheStats;

/// Aggregated timings for one lattice level across all jobs.
#[derive(Debug, Default, Clone, Copy)]
struct LevelAgg {
    runs: u64,
    nanos: u64,
}

/// All counters of the service.
pub struct Metrics {
    start: Instant,
    /// Requests *parsed* (any endpoint) — one keep-alive connection can
    /// contribute many; a connection that never sends a byte contributes
    /// none.
    pub requests_total: AtomicU64,
    /// Connections admitted past the connection cap.
    pub connections_total: AtomicU64,
    /// Connections currently being served (the semaphore's level).
    pub connections_active: AtomicUsize,
    /// Connections refused with 503 at the cap.
    pub connections_shed: AtomicU64,
    /// Requests served on an already-used connection — every one of these
    /// is a TCP handshake keep-alive saved the client.
    pub connections_reused: AtomicU64,
    /// Largest number of requests any single connection has carried.
    pub requests_per_conn_max: AtomicU64,
    /// Discovery jobs finished successfully.
    pub jobs_completed: AtomicU64,
    /// Discovery jobs that errored (disk store failures).
    pub jobs_failed: AtomicU64,
    /// Discovery requests refused with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Workers currently executing a job.
    pub workers_busy: AtomicUsize,
    /// Streaming `/v1/discover` responses started (live or replay).
    pub streams_total: AtomicU64,
    /// Level objects delivered across all streams.
    pub levels_streamed: AtomicU64,
    /// NDJSON payload bytes delivered across all streams (chunk contents,
    /// not HTTP framing).
    pub stream_bytes: AtomicU64,
    /// Nanoseconds from request arrival to the first level chunk, summed
    /// over streams that delivered at least one level (divide by
    /// `first_level_count` for the mean `/metrics` reports).
    first_level_nanos: AtomicU64,
    first_level_count: AtomicU64,
    workers_total: usize,
    level_times: Mutex<Vec<LevelAgg>>,
    disk_bytes_read: AtomicU64,
    disk_bytes_written: AtomicU64,
    store_evictions: AtomicU64,
    store_pins: AtomicU64,
    store_oversized_resident: AtomicU64,
    parallel_grains: AtomicU64,
    worker_steals: AtomicU64,
    worker_parks: AtomicU64,
    worker_spin_nanos: AtomicU64,
    worker_busy_nanos: AtomicU64,
    fetch_stall_nanos: AtomicU64,
    topk_searches: AtomicU64,
    topk_bound_pruned: AtomicU64,
    topk_improvements: AtomicU64,
}

impl Metrics {
    /// Fresh counters for a pool of `workers_total` workers.
    pub fn new(workers_total: usize) -> Metrics {
        Metrics {
            start: Instant::now(),
            requests_total: AtomicU64::new(0),
            connections_total: AtomicU64::new(0),
            connections_active: AtomicUsize::new(0),
            connections_shed: AtomicU64::new(0),
            connections_reused: AtomicU64::new(0),
            requests_per_conn_max: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            workers_busy: AtomicUsize::new(0),
            streams_total: AtomicU64::new(0),
            levels_streamed: AtomicU64::new(0),
            stream_bytes: AtomicU64::new(0),
            first_level_nanos: AtomicU64::new(0),
            first_level_count: AtomicU64::new(0),
            workers_total,
            level_times: Mutex::new(Vec::new()),
            disk_bytes_read: AtomicU64::new(0),
            disk_bytes_written: AtomicU64::new(0),
            store_evictions: AtomicU64::new(0),
            store_pins: AtomicU64::new(0),
            store_oversized_resident: AtomicU64::new(0),
            parallel_grains: AtomicU64::new(0),
            worker_steals: AtomicU64::new(0),
            worker_parks: AtomicU64::new(0),
            worker_spin_nanos: AtomicU64::new(0),
            worker_busy_nanos: AtomicU64::new(0),
            fetch_stall_nanos: AtomicU64::new(0),
            topk_searches: AtomicU64::new(0),
            topk_bound_pruned: AtomicU64::new(0),
            topk_improvements: AtomicU64::new(0),
        }
    }

    /// Folds one finished search into the aggregates.
    pub fn record_search(&self, stats: &TaneStats) {
        self.disk_bytes_read
            .fetch_add(stats.disk_bytes_read, Ordering::Relaxed);
        self.disk_bytes_written
            .fetch_add(stats.disk_bytes_written, Ordering::Relaxed);
        self.store_evictions
            .fetch_add(stats.store_evictions, Ordering::Relaxed);
        self.store_pins
            .fetch_add(stats.store_pins, Ordering::Relaxed);
        self.store_oversized_resident
            .fetch_add(stats.oversized_resident, Ordering::Relaxed);
        self.parallel_grains
            .fetch_add(stats.parallel_grains, Ordering::Relaxed);
        self.worker_steals
            .fetch_add(stats.worker_steals, Ordering::Relaxed);
        self.worker_parks
            .fetch_add(stats.worker_parks, Ordering::Relaxed);
        self.worker_spin_nanos
            .fetch_add(stats.worker_spin.as_nanos() as u64, Ordering::Relaxed);
        self.worker_busy_nanos
            .fetch_add(stats.worker_busy.as_nanos() as u64, Ordering::Relaxed);
        self.fetch_stall_nanos
            .fetch_add(stats.fetch_stall.as_nanos() as u64, Ordering::Relaxed);
        let mut levels = self.level_times.lock().unwrap_or_else(|e| e.into_inner());
        if levels.len() < stats.level_times.len() {
            levels.resize(stats.level_times.len(), LevelAgg::default());
        }
        for (agg, t) in levels.iter_mut().zip(&stats.level_times) {
            agg.runs += 1;
            agg.nanos += t.as_nanos() as u64;
        }
    }

    /// Folds one finished *ranked* search into the top-k aggregates (the
    /// shared counters go through [`record_search`](Self::record_search) as
    /// for any other search).
    pub fn record_topk(&self, stats: &TaneStats) {
        self.topk_searches.fetch_add(1, Ordering::Relaxed);
        self.topk_bound_pruned
            .fetch_add(stats.topk_bound_pruned, Ordering::Relaxed);
        self.topk_improvements
            .fetch_add(stats.topk_improvements, Ordering::Relaxed);
    }

    /// Records the end of one connection that served `served` requests.
    pub fn record_connection_end(&self, served: u64) {
        self.requests_per_conn_max
            .fetch_max(served, Ordering::Relaxed);
    }

    /// Records the latency from request arrival to the first streamed
    /// level chunk of one `/v1/discover` stream.
    pub fn record_first_level_latency(&self, latency: std::time::Duration) {
        self.first_level_nanos
            .fetch_add(latency.as_nanos() as u64, Ordering::Relaxed);
        self.first_level_count.fetch_add(1, Ordering::Relaxed);
    }

    /// The `/metrics` document. Queue and cache state is owned elsewhere
    /// and passed in: `(depth, capacity)` and a [`CacheStats`] snapshot.
    pub fn render(&self, queue: (usize, usize), cache: CacheStats) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        let levels: Vec<Json> = {
            let level_times = self.level_times.lock().unwrap_or_else(|e| e.into_inner());
            level_times
                .iter()
                .enumerate()
                .map(|(i, agg)| {
                    Json::obj([
                        ("level", Json::Num((i + 1) as f64)),
                        ("runs", n(agg.runs)),
                        ("total_secs", Json::Num(agg.nanos as f64 / 1e9)),
                    ])
                })
                .collect()
        };
        Json::obj([
            ("uptime_secs", Json::Num(self.start.elapsed().as_secs_f64())),
            (
                "requests_total",
                n(self.requests_total.load(Ordering::Relaxed)),
            ),
            (
                "connections",
                Json::obj([
                    (
                        "accepted",
                        n(self.connections_total.load(Ordering::Relaxed)),
                    ),
                    (
                        "active",
                        Json::Num(self.connections_active.load(Ordering::Relaxed) as f64),
                    ),
                    ("shed", n(self.connections_shed.load(Ordering::Relaxed))),
                    ("reused", n(self.connections_reused.load(Ordering::Relaxed))),
                    (
                        "max_requests_per_conn",
                        n(self.requests_per_conn_max.load(Ordering::Relaxed)),
                    ),
                ]),
            ),
            (
                "queue",
                Json::obj([
                    ("depth", Json::Num(queue.0 as f64)),
                    ("capacity", Json::Num(queue.1 as f64)),
                    ("rejected", n(self.jobs_rejected.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "workers",
                Json::obj([
                    ("total", Json::Num(self.workers_total as f64)),
                    (
                        "busy",
                        Json::Num(self.workers_busy.load(Ordering::Relaxed) as f64),
                    ),
                ]),
            ),
            (
                "jobs",
                Json::obj([
                    ("completed", n(self.jobs_completed.load(Ordering::Relaxed))),
                    ("failed", n(self.jobs_failed.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", n(cache.hits)),
                    ("coalesced", n(cache.coalesced)),
                    ("misses", n(cache.misses)),
                    ("entries", Json::Num(cache.entries as f64)),
                    ("evictions", n(cache.evictions)),
                    (
                        "evicted_compute_secs",
                        Json::Num(cache.evicted_compute_secs),
                    ),
                    ("evicted_stale", n(cache.evicted_stale)),
                ]),
            ),
            (
                "search",
                Json::obj([
                    ("level_times", Json::Arr(levels)),
                    (
                        "disk_bytes_read",
                        n(self.disk_bytes_read.load(Ordering::Relaxed)),
                    ),
                    (
                        "disk_bytes_written",
                        n(self.disk_bytes_written.load(Ordering::Relaxed)),
                    ),
                    (
                        "store",
                        Json::obj([
                            ("evictions", n(self.store_evictions.load(Ordering::Relaxed))),
                            ("pins", n(self.store_pins.load(Ordering::Relaxed))),
                            (
                                "oversized_resident",
                                n(self.store_oversized_resident.load(Ordering::Relaxed)),
                            ),
                        ]),
                    ),
                    (
                        "parallel_grains",
                        n(self.parallel_grains.load(Ordering::Relaxed)),
                    ),
                    (
                        "worker_steals",
                        n(self.worker_steals.load(Ordering::Relaxed)),
                    ),
                    ("worker_parks", n(self.worker_parks.load(Ordering::Relaxed))),
                    (
                        "worker_spin_secs",
                        Json::Num(self.worker_spin_nanos.load(Ordering::Relaxed) as f64 / 1e9),
                    ),
                    (
                        "worker_busy_secs",
                        Json::Num(self.worker_busy_nanos.load(Ordering::Relaxed) as f64 / 1e9),
                    ),
                    (
                        "fetch_stall_secs",
                        Json::Num(self.fetch_stall_nanos.load(Ordering::Relaxed) as f64 / 1e9),
                    ),
                    (
                        "topk",
                        Json::obj([
                            ("searches", n(self.topk_searches.load(Ordering::Relaxed))),
                            (
                                "bound_pruned",
                                n(self.topk_bound_pruned.load(Ordering::Relaxed)),
                            ),
                            (
                                "improvements",
                                n(self.topk_improvements.load(Ordering::Relaxed)),
                            ),
                        ]),
                    ),
                ]),
            ),
            (
                "stream",
                Json::obj([
                    ("streams", n(self.streams_total.load(Ordering::Relaxed))),
                    (
                        "levels_streamed",
                        n(self.levels_streamed.load(Ordering::Relaxed)),
                    ),
                    ("stream_bytes", n(self.stream_bytes.load(Ordering::Relaxed))),
                    ("first_level_latency_secs", {
                        let count = self.first_level_count.load(Ordering::Relaxed);
                        let nanos = self.first_level_nanos.load(Ordering::Relaxed);
                        Json::Num(if count == 0 {
                            0.0
                        } else {
                            nanos as f64 / count as f64 / 1e9
                        })
                    }),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_shape_and_aggregation() {
        let m = Metrics::new(4);
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.jobs_completed.fetch_add(2, Ordering::Relaxed);
        let mut stats = TaneStats::default();
        stats.level_times = vec![Duration::from_millis(10), Duration::from_millis(5)];
        stats.disk_bytes_written = 1024;
        stats.store_evictions = 7;
        stats.store_pins = 9;
        stats.oversized_resident = 1;
        stats.parallel_grains = 12;
        stats.worker_steals = 3;
        stats.worker_parks = 5;
        stats.worker_spin = Duration::from_millis(2);
        stats.worker_busy = Duration::from_millis(40);
        m.record_search(&stats);
        stats.level_times = vec![Duration::from_millis(10)];
        m.record_search(&stats);

        m.connections_total.fetch_add(2, Ordering::Relaxed);
        m.connections_reused.fetch_add(1, Ordering::Relaxed);
        m.record_connection_end(9);
        m.record_connection_end(4);

        let cache = CacheStats {
            hits: 5,
            coalesced: 1,
            misses: 7,
            entries: 3,
            evictions: 2,
            evicted_compute_secs: 0.25,
            evicted_stale: 4,
        };
        let doc = m.render((2, 64), cache);
        assert_eq!(doc.get("requests_total").unwrap().as_usize(), Some(3));
        assert_eq!(
            doc.get("queue").unwrap().get("depth").unwrap().as_usize(),
            Some(2)
        );
        assert_eq!(
            doc.get("workers").unwrap().get("total").unwrap().as_usize(),
            Some(4)
        );
        assert_eq!(
            doc.get("cache").unwrap().get("hits").unwrap().as_usize(),
            Some(5)
        );
        assert_eq!(
            doc.get("cache")
                .unwrap()
                .get("evictions")
                .unwrap()
                .as_usize(),
            Some(2)
        );
        assert!(
            (doc.get("cache")
                .unwrap()
                .get("evicted_compute_secs")
                .unwrap()
                .as_f64()
                .unwrap()
                - 0.25)
                .abs()
                < 1e-12
        );
        assert_eq!(
            doc.get("cache")
                .unwrap()
                .get("evicted_stale")
                .unwrap()
                .as_usize(),
            Some(4)
        );
        let conns = doc.get("connections").unwrap();
        assert_eq!(conns.get("accepted").unwrap().as_usize(), Some(2));
        assert_eq!(conns.get("reused").unwrap().as_usize(), Some(1));
        assert_eq!(conns.get("shed").unwrap().as_usize(), Some(0));
        assert_eq!(
            conns.get("max_requests_per_conn").unwrap().as_usize(),
            Some(9)
        );
        let search = doc.get("search").unwrap();
        assert_eq!(
            search.get("disk_bytes_written").unwrap().as_usize(),
            Some(2048)
        );
        assert_eq!(search.get("parallel_grains").unwrap().as_usize(), Some(24));
        let store = search.get("store").unwrap();
        assert_eq!(store.get("evictions").unwrap().as_usize(), Some(14));
        assert_eq!(store.get("pins").unwrap().as_usize(), Some(18));
        assert_eq!(store.get("oversized_resident").unwrap().as_usize(), Some(2));
        assert_eq!(search.get("worker_steals").unwrap().as_usize(), Some(6));
        assert_eq!(search.get("worker_parks").unwrap().as_usize(), Some(10));
        let spin = search.get("worker_spin_secs").unwrap().as_f64().unwrap();
        assert!((spin - 0.004).abs() < 1e-9, "{spin}");
        let busy = search.get("worker_busy_secs").unwrap().as_f64().unwrap();
        assert!((busy - 0.080).abs() < 1e-9, "{busy}");
        assert_eq!(search.get("fetch_stall_secs").unwrap().as_f64(), Some(0.0));
        let levels = search.get("level_times").unwrap().as_array().unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].get("runs").unwrap().as_usize(), Some(2));
        assert_eq!(levels[1].get("runs").unwrap().as_usize(), Some(1));
        let l1 = levels[0].get("total_secs").unwrap().as_f64().unwrap();
        assert!((l1 - 0.020).abs() < 1e-9);
        let stream = doc.get("stream").unwrap();
        assert_eq!(stream.get("levels_streamed").unwrap().as_usize(), Some(0));
        assert_eq!(
            stream.get("first_level_latency_secs").unwrap().as_f64(),
            Some(0.0)
        );
        // Valid JSON end to end.
        assert!(Json::parse(&doc.render()).is_ok());
    }

    #[test]
    fn first_level_latency_reports_the_mean() {
        let m = Metrics::new(1);
        m.record_first_level_latency(Duration::from_millis(10));
        m.record_first_level_latency(Duration::from_millis(30));
        m.levels_streamed.fetch_add(7, Ordering::Relaxed);
        m.stream_bytes.fetch_add(4096, Ordering::Relaxed);
        let doc = m.render(
            (0, 1),
            CacheStats {
                hits: 0,
                coalesced: 0,
                misses: 0,
                entries: 0,
                evictions: 0,
                evicted_compute_secs: 0.0,
                evicted_stale: 0,
            },
        );
        let stream = doc.get("stream").unwrap();
        assert_eq!(stream.get("levels_streamed").unwrap().as_usize(), Some(7));
        assert_eq!(stream.get("stream_bytes").unwrap().as_usize(), Some(4096));
        let mean = stream
            .get("first_level_latency_secs")
            .unwrap()
            .as_f64()
            .unwrap();
        assert!((mean - 0.020).abs() < 1e-9, "{mean}");
    }
}
