//! Service counters behind `/metrics`.
//!
//! Everything is a relaxed atomic or a short-held mutex: metrics recording
//! sits on the worker hot path and must never serialize the pool. The
//! per-level search timings reuse the `TaneStats::level_times` instrumented
//! in `tane-core` — the service aggregates them across jobs so `/metrics`
//! shows where lattice time actually goes, level by level.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;
use tane_core::TaneStats;
use tane_util::Json;

/// Aggregated timings for one lattice level across all jobs.
#[derive(Debug, Default, Clone, Copy)]
struct LevelAgg {
    runs: u64,
    nanos: u64,
}

/// All counters of the service.
pub struct Metrics {
    start: Instant,
    /// Requests accepted off the listener, any endpoint.
    pub requests_total: AtomicU64,
    /// Discovery jobs finished successfully.
    pub jobs_completed: AtomicU64,
    /// Discovery jobs that errored (disk store failures).
    pub jobs_failed: AtomicU64,
    /// Discovery requests refused with 429 (queue full).
    pub jobs_rejected: AtomicU64,
    /// Workers currently executing a job.
    pub workers_busy: AtomicUsize,
    workers_total: usize,
    level_times: Mutex<Vec<LevelAgg>>,
    disk_bytes_read: AtomicU64,
    disk_bytes_written: AtomicU64,
}

impl Metrics {
    /// Fresh counters for a pool of `workers_total` workers.
    pub fn new(workers_total: usize) -> Metrics {
        Metrics {
            start: Instant::now(),
            requests_total: AtomicU64::new(0),
            jobs_completed: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            workers_busy: AtomicUsize::new(0),
            workers_total,
            level_times: Mutex::new(Vec::new()),
            disk_bytes_read: AtomicU64::new(0),
            disk_bytes_written: AtomicU64::new(0),
        }
    }

    /// Folds one finished search into the aggregates.
    pub fn record_search(&self, stats: &TaneStats) {
        self.disk_bytes_read.fetch_add(stats.disk_bytes_read, Ordering::Relaxed);
        self.disk_bytes_written.fetch_add(stats.disk_bytes_written, Ordering::Relaxed);
        let mut levels = self.level_times.lock().expect("metrics poisoned");
        if levels.len() < stats.level_times.len() {
            levels.resize(stats.level_times.len(), LevelAgg::default());
        }
        for (agg, t) in levels.iter_mut().zip(&stats.level_times) {
            agg.runs += 1;
            agg.nanos += t.as_nanos() as u64;
        }
    }

    /// The `/metrics` document. Queue and cache state is owned elsewhere and
    /// passed in: `(depth, capacity)` and `(hits, coalesced, misses,
    /// entries)`.
    pub fn render(&self, queue: (usize, usize), cache: (u64, u64, u64, usize)) -> Json {
        let n = |v: u64| Json::Num(v as f64);
        let levels: Vec<Json> = {
            let level_times = self.level_times.lock().expect("metrics poisoned");
            level_times
                .iter()
                .enumerate()
                .map(|(i, agg)| {
                    Json::obj([
                        ("level", Json::Num((i + 1) as f64)),
                        ("runs", n(agg.runs)),
                        ("total_secs", Json::Num(agg.nanos as f64 / 1e9)),
                    ])
                })
                .collect()
        };
        Json::obj([
            ("uptime_secs", Json::Num(self.start.elapsed().as_secs_f64())),
            ("requests_total", n(self.requests_total.load(Ordering::Relaxed))),
            (
                "queue",
                Json::obj([
                    ("depth", Json::Num(queue.0 as f64)),
                    ("capacity", Json::Num(queue.1 as f64)),
                    ("rejected", n(self.jobs_rejected.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "workers",
                Json::obj([
                    ("total", Json::Num(self.workers_total as f64)),
                    ("busy", Json::Num(self.workers_busy.load(Ordering::Relaxed) as f64)),
                ]),
            ),
            (
                "jobs",
                Json::obj([
                    ("completed", n(self.jobs_completed.load(Ordering::Relaxed))),
                    ("failed", n(self.jobs_failed.load(Ordering::Relaxed))),
                ]),
            ),
            (
                "cache",
                Json::obj([
                    ("hits", n(cache.0)),
                    ("coalesced", n(cache.1)),
                    ("misses", n(cache.2)),
                    ("entries", Json::Num(cache.3 as f64)),
                ]),
            ),
            (
                "search",
                Json::obj([
                    ("level_times", Json::Arr(levels)),
                    ("disk_bytes_read", n(self.disk_bytes_read.load(Ordering::Relaxed))),
                    ("disk_bytes_written", n(self.disk_bytes_written.load(Ordering::Relaxed))),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn render_shape_and_aggregation() {
        let m = Metrics::new(4);
        m.requests_total.fetch_add(3, Ordering::Relaxed);
        m.jobs_completed.fetch_add(2, Ordering::Relaxed);
        let mut stats = TaneStats::default();
        stats.level_times = vec![Duration::from_millis(10), Duration::from_millis(5)];
        stats.disk_bytes_written = 1024;
        m.record_search(&stats);
        stats.level_times = vec![Duration::from_millis(10)];
        m.record_search(&stats);

        let doc = m.render((2, 64), (5, 1, 7, 3));
        assert_eq!(doc.get("requests_total").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("queue").unwrap().get("depth").unwrap().as_usize(), Some(2));
        assert_eq!(doc.get("workers").unwrap().get("total").unwrap().as_usize(), Some(4));
        assert_eq!(doc.get("cache").unwrap().get("hits").unwrap().as_usize(), Some(5));
        let search = doc.get("search").unwrap();
        assert_eq!(search.get("disk_bytes_written").unwrap().as_usize(), Some(2048));
        let levels = search.get("level_times").unwrap().as_array().unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(levels[0].get("runs").unwrap().as_usize(), Some(2));
        assert_eq!(levels[1].get("runs").unwrap().as_usize(), Some(1));
        let l1 = levels[0].get("total_secs").unwrap().as_f64().unwrap();
        assert!((l1 - 0.020).abs() < 1e-9);
        // Valid JSON end to end.
        assert!(Json::parse(&doc.render()).is_ok());
    }
}
