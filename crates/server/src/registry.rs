//! The dataset registry: built-in synthetic datasets plus uploads.
//!
//! Built-ins (the paper's Table 1 corpus, `tane_datasets::by_name`) are
//! generated lazily on first request and then kept; uploads arrive as CSV
//! bodies on `POST /datasets/{name}`. Lookups hand out `Arc<Relation>` so
//! concurrent jobs share one copy of the data.

use std::sync::{Arc, RwLock};
use tane_relation::Relation;
use tane_util::FxHashMap;

/// What [`DatasetRegistry::remove`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The upload existed and is gone.
    Removed,
    /// The name belongs to a built-in dataset; those cannot be removed.
    Builtin,
    /// No dataset of that name was registered.
    NotFound,
}

/// Thread-safe name → relation map.
pub struct DatasetRegistry {
    inner: RwLock<FxHashMap<String, Arc<Relation>>>,
}

impl Default for DatasetRegistry {
    fn default() -> Self {
        DatasetRegistry::new()
    }
}

impl DatasetRegistry {
    /// An empty registry (built-ins materialize on first use).
    pub fn new() -> DatasetRegistry {
        DatasetRegistry {
            inner: RwLock::new(FxHashMap::default()),
        }
    }

    /// Resolves `name`: uploads and already-generated built-ins first, then
    /// the built-in generators.
    pub fn get(&self, name: &str) -> Option<Arc<Relation>> {
        if let Some(r) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Some(Arc::clone(r));
        }
        // Built-in: generate outside any lock (seconds for the big ones),
        // then race to insert — first writer wins so every caller shares
        // one Arc.
        let generated = Arc::new(tane_datasets::by_name(name)?);
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let entry = map.entry(name.to_string()).or_insert(generated);
        Some(Arc::clone(entry))
    }

    /// Whether `name` is one of the built-in benchmark datasets. Built-ins
    /// can be uploaded *over* (the upload wins for lookups) but never
    /// unregistered — the service's corpus stays intact.
    pub fn is_builtin(name: &str) -> bool {
        tane_datasets::DATASET_NAMES.contains(&name)
    }

    /// Unregisters an uploaded dataset. Built-in names are refused
    /// ([`RemoveOutcome::Builtin`]) whether or not they have been
    /// generated; unknown names report [`RemoveOutcome::NotFound`].
    pub fn remove(&self, name: &str) -> RemoveOutcome {
        if Self::is_builtin(name) {
            return RemoveOutcome::Builtin;
        }
        let removed = self
            .inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name)
            .is_some();
        if removed {
            RemoveOutcome::Removed
        } else {
            RemoveOutcome::NotFound
        }
    }

    /// Registers (or replaces) an uploaded relation.
    pub fn insert(&self, name: &str, relation: Relation) -> Arc<Relation> {
        let arc = Arc::new(relation);
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), Arc::clone(&arc));
        arc
    }

    /// Every dataset available right now: loaded ones with their shapes,
    /// plus not-yet-generated built-ins (shape unknown until generated).
    /// Sorted by name.
    pub fn list(&self) -> Vec<(String, Option<(usize, usize)>)> {
        let map = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, Option<(usize, usize)>)> = map
            .iter()
            .map(|(name, r)| (name.clone(), Some((r.num_rows(), r.num_attrs()))))
            .collect();
        for &name in tane_datasets::DATASET_NAMES {
            if !map.contains_key(name) {
                out.push((name.to_string(), None));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::Schema;

    #[test]
    fn builtins_resolve_and_are_shared() {
        let reg = DatasetRegistry::new();
        let a = reg.get("lymphography").expect("built-in");
        let b = reg.get("lymphography").expect("built-in");
        assert!(Arc::ptr_eq(&a, &b), "one generation, shared Arc");
        assert_eq!(a.num_rows(), 148);
        assert!(reg.get("no-such-dataset").is_none());
    }

    #[test]
    fn uploads_can_be_removed_but_builtins_cannot() {
        let reg = DatasetRegistry::new();
        let r = Relation::from_codes(
            Schema::new(["A", "B"]).unwrap(),
            vec![vec![0, 1], vec![1, 1]],
        )
        .unwrap();
        reg.insert("mine", r);
        assert!(reg.get("mine").is_some());
        assert_eq!(reg.remove("mine"), RemoveOutcome::Removed);
        assert!(
            reg.get("mine").is_none(),
            "removed uploads no longer resolve"
        );
        assert_eq!(reg.remove("mine"), RemoveOutcome::NotFound);
        // Built-ins are protected, generated or not.
        assert_eq!(reg.remove("chess"), RemoveOutcome::Builtin);
        let _ = reg.get("lymphography").expect("built-in");
        assert_eq!(reg.remove("lymphography"), RemoveOutcome::Builtin);
        assert!(
            reg.get("lymphography").is_some(),
            "built-in survives the refusal"
        );
        assert!(DatasetRegistry::is_builtin("wbc"));
        assert!(!DatasetRegistry::is_builtin("mine"));
    }

    #[test]
    fn uploads_resolve_and_list() {
        let reg = DatasetRegistry::new();
        let r = Relation::from_codes(
            Schema::new(["A", "B"]).unwrap(),
            vec![vec![0, 1], vec![1, 1]],
        )
        .unwrap();
        reg.insert("mine", r);
        assert_eq!(reg.get("mine").unwrap().num_rows(), 2);
        let listing = reg.list();
        assert!(listing
            .iter()
            .any(|(n, shape)| n == "mine" && *shape == Some((2, 2))));
        assert!(listing
            .iter()
            .any(|(n, shape)| n == "chess" && shape.is_none()));
        // Listing is sorted.
        let names: Vec<&String> = listing.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }
}
