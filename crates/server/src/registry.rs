//! The dataset registry: built-in synthetic datasets plus uploads.
//!
//! Built-ins (the paper's Table 1 corpus, `tane_datasets::by_name`) are
//! generated lazily on first request and then kept; uploads arrive as CSV
//! bodies on `POST /datasets/{name}`. Lookups hand out `Arc<Relation>` so
//! concurrent jobs share one copy of the data.
//!
//! Uploads are **mutable**: each one is wrapped in a
//! [`tane_delta::DatasetEngine`], so `PATCH /v1/datasets/{name}/rows` can
//! append and delete rows and discovery transparently sees the merged
//! view (and reuses the engine's partition trackers). Built-ins stay
//! static — they are the reproducible benchmark corpus.

use std::sync::{Arc, RwLock};
use tane_delta::{DatasetEngine, EngineLimits};
use tane_partition::DiskQuota;
use tane_relation::{NullSemantics, Relation};
use tane_util::FxHashMap;

/// Default per-dataset disk quota when the server is not told otherwise:
/// generous enough that only a runaway search (or a deliberately tiny
/// override in tests) ever hits it.
pub const DEFAULT_DISK_QUOTA_BYTES: u64 = 4 << 30;

/// What [`DatasetRegistry::remove`] decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemoveOutcome {
    /// The upload existed and is gone.
    Removed,
    /// The name belongs to a built-in dataset; those cannot be removed.
    Builtin,
    /// No dataset of that name was registered.
    NotFound,
}

enum Stored {
    /// A generated built-in (or a value-less relation inserted directly in
    /// tests): immutable.
    Static(Arc<Relation>),
    /// An upload with its incremental engine: patchable.
    Engine(Arc<DatasetEngine>),
}

impl Stored {
    fn relation(&self) -> Arc<Relation> {
        match self {
            Stored::Static(r) => Arc::clone(r),
            Stored::Engine(e) => e.merged(),
        }
    }
}

/// Thread-safe name → dataset map.
pub struct DatasetRegistry {
    inner: RwLock<FxHashMap<String, Stored>>,
    /// One [`DiskQuota`] per dataset name, created lazily on the first
    /// disk-backed search and shared by every concurrent search of that
    /// dataset — the per-dataset spill cap DESIGN §13 describes.
    quotas: RwLock<FxHashMap<String, Arc<DiskQuota>>>,
    quota_limit: u64,
}

impl Default for DatasetRegistry {
    fn default() -> Self {
        DatasetRegistry::new()
    }
}

impl DatasetRegistry {
    /// An empty registry (built-ins materialize on first use) with the
    /// default per-dataset disk quota.
    pub fn new() -> DatasetRegistry {
        DatasetRegistry::with_disk_quota(DEFAULT_DISK_QUOTA_BYTES)
    }

    /// An empty registry whose disk-backed searches are each capped at
    /// `quota_limit` spilled bytes per dataset.
    pub fn with_disk_quota(quota_limit: u64) -> DatasetRegistry {
        DatasetRegistry {
            inner: RwLock::new(FxHashMap::default()),
            quotas: RwLock::new(FxHashMap::default()),
            quota_limit,
        }
    }

    /// The shared disk quota for `name`. Every disk-backed search of the
    /// same dataset charges the same quota object, so their combined spill
    /// is what the cap bounds; distinct datasets never contend.
    pub fn disk_quota(&self, name: &str) -> Arc<DiskQuota> {
        if let Some(q) = self
            .quotas
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(q);
        }
        let mut quotas = self.quotas.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            quotas
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(DiskQuota::new(self.quota_limit))),
        )
    }

    /// Resolves `name` to the current relation: uploads see their merged
    /// (post-patch) view, built-ins generate on first use. Already-loaded
    /// entries first, then the built-in generators.
    pub fn get(&self, name: &str) -> Option<Arc<Relation>> {
        if let Some(stored) = self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Some(stored.relation());
        }
        // Built-in: generate outside any lock (seconds for the big ones),
        // then race to insert — first writer wins so every caller shares
        // one Arc.
        let generated = Arc::new(tane_datasets::by_name(name)?);
        let mut map = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let entry = map
            .entry(name.to_string())
            .or_insert(Stored::Static(generated));
        // lint:lock-order(inner -> state): resolving an uploaded dataset
        // snapshots its delta engine (engine `state` mutex) under the
        // registry map lock; the engine never calls back into the
        // registry, so the reverse nesting cannot occur.
        Some(entry.relation())
    }

    /// The incremental engine behind `name`, if it is a patchable upload.
    pub fn engine(&self, name: &str) -> Option<Arc<DatasetEngine>> {
        match self
            .inner
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            Some(Stored::Engine(e)) => Some(Arc::clone(e)),
            _ => None,
        }
    }

    /// Whether `name` is one of the built-in benchmark datasets. Built-ins
    /// can be uploaded *over* (the upload wins for lookups) but never
    /// unregistered or patched — the service's corpus stays intact.
    pub fn is_builtin(name: &str) -> bool {
        tane_datasets::DATASET_NAMES.contains(&name)
    }

    /// Unregisters an uploaded dataset. Built-in names are refused
    /// ([`RemoveOutcome::Builtin`]) whether or not they have been
    /// generated; unknown names report [`RemoveOutcome::NotFound`].
    pub fn remove(&self, name: &str) -> RemoveOutcome {
        if Self::is_builtin(name) {
            return RemoveOutcome::Builtin;
        }
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        let removed = inner.remove(name).is_some();
        drop(inner);
        if removed {
            // A future re-upload starts a fresh lineage, so it gets a fresh
            // quota too. In-flight searches keep their Arc; their charges
            // release as their stores drop.
            self.quotas
                .write()
                .unwrap_or_else(|e| e.into_inner())
                .remove(name);
            RemoveOutcome::Removed
        } else {
            RemoveOutcome::NotFound
        }
    }

    /// Registers (or replaces — a fresh generation lineage) an uploaded
    /// relation, wrapping it in an incremental engine when it carries value
    /// dictionaries (every CSV upload does; raw-code relations fall back
    /// to a static, unpatchable entry).
    pub fn insert(&self, name: &str, relation: Relation) -> Arc<Relation> {
        let arc = Arc::new(relation);
        let stored = match DatasetEngine::new(
            Arc::clone(&arc),
            NullSemantics::NullsEqual,
            EngineLimits::default(),
        ) {
            Ok(engine) => Stored::Engine(Arc::new(engine)),
            Err(_) => Stored::Static(Arc::clone(&arc)),
        };
        self.inner
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), stored);
        arc
    }

    /// Every dataset available right now: loaded ones with their current
    /// shapes, plus not-yet-generated built-ins (shape unknown until
    /// generated). Sorted by name.
    pub fn list(&self) -> Vec<(String, Option<(usize, usize)>)> {
        let map = self.inner.read().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<(String, Option<(usize, usize)>)> = map
            .iter()
            .map(|(name, stored)| {
                let r = stored.relation();
                (name.clone(), Some((r.num_rows(), r.num_attrs())))
            })
            .collect();
        for &name in tane_datasets::DATASET_NAMES {
            if !map.contains_key(name) {
                out.push((name.to_string(), None));
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tane_relation::{RowPatch, Schema, Value};

    fn csv_like(name_rows: &[[&str; 2]]) -> Relation {
        let mut b = Relation::builder(Schema::new(["A", "B"]).unwrap());
        for row in name_rows {
            b.push_row(row.map(Value::from)).unwrap();
        }
        b.build()
    }

    #[test]
    fn builtins_resolve_and_are_shared() {
        let reg = DatasetRegistry::new();
        let a = reg.get("lymphography").expect("built-in");
        let b = reg.get("lymphography").expect("built-in");
        assert!(Arc::ptr_eq(&a, &b), "one generation, shared Arc");
        assert_eq!(a.num_rows(), 148);
        assert!(reg.get("no-such-dataset").is_none());
        assert!(
            reg.engine("lymphography").is_none(),
            "built-ins have no engine"
        );
    }

    #[test]
    fn uploads_can_be_removed_but_builtins_cannot() {
        let reg = DatasetRegistry::new();
        let r = Relation::from_codes(
            Schema::new(["A", "B"]).unwrap(),
            vec![vec![0, 1], vec![1, 1]],
        )
        .unwrap();
        reg.insert("mine", r);
        assert!(reg.get("mine").is_some());
        assert_eq!(reg.remove("mine"), RemoveOutcome::Removed);
        assert!(
            reg.get("mine").is_none(),
            "removed uploads no longer resolve"
        );
        assert_eq!(reg.remove("mine"), RemoveOutcome::NotFound);
        // Built-ins are protected, generated or not.
        assert_eq!(reg.remove("chess"), RemoveOutcome::Builtin);
        let _ = reg.get("lymphography").expect("built-in");
        assert_eq!(reg.remove("lymphography"), RemoveOutcome::Builtin);
        assert!(
            reg.get("lymphography").is_some(),
            "built-in survives the refusal"
        );
        assert!(DatasetRegistry::is_builtin("wbc"));
        assert!(!DatasetRegistry::is_builtin("mine"));
    }

    #[test]
    fn uploads_resolve_and_list() {
        let reg = DatasetRegistry::new();
        let r = Relation::from_codes(
            Schema::new(["A", "B"]).unwrap(),
            vec![vec![0, 1], vec![1, 1]],
        )
        .unwrap();
        reg.insert("mine", r);
        assert_eq!(reg.get("mine").unwrap().num_rows(), 2);
        let listing = reg.list();
        assert!(listing
            .iter()
            .any(|(n, shape)| n == "mine" && *shape == Some((2, 2))));
        assert!(listing
            .iter()
            .any(|(n, shape)| n == "chess" && shape.is_none()));
        // Listing is sorted.
        let names: Vec<&String> = listing.iter().map(|(n, _)| n).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn value_backed_uploads_are_patchable_and_lookups_track_the_merge() {
        let reg = DatasetRegistry::new();
        reg.insert("mut", csv_like(&[["x", "1"], ["y", "2"]]));
        let engine = reg.engine("mut").expect("CSV-style uploads get engines");
        let before = reg.get("mut").unwrap();
        assert_eq!(before.num_rows(), 2);
        engine
            .patch(&RowPatch {
                deletes: vec![0],
                appends: vec![
                    vec![Value::from("z"), Value::from("3")],
                    vec![Value::from("w"), Value::from("4")],
                ],
            })
            .unwrap();
        let after = reg.get("mut").unwrap();
        assert_eq!(after.num_rows(), 3, "lookup sees the merged view");
        assert_eq!(before.num_rows(), 2, "old snapshots stay immutable");
        assert_ne!(before.content_hash(), after.content_hash());
        // Shapes in the listing follow the current generation.
        assert!(reg
            .list()
            .iter()
            .any(|(n, shape)| n == "mut" && *shape == Some((3, 2))));
    }

    #[test]
    fn disk_quotas_are_shared_per_dataset_and_reset_on_removal() {
        let reg = DatasetRegistry::with_disk_quota(1 << 20);
        let a = reg.disk_quota("chess");
        let b = reg.disk_quota("chess");
        assert!(Arc::ptr_eq(&a, &b), "one quota per dataset");
        assert_eq!(a.limit(), 1 << 20);
        let other = reg.disk_quota("adult");
        assert!(!Arc::ptr_eq(&a, &other), "datasets never share a quota");
        // Removal retires the quota with the lineage.
        reg.insert("mine", csv_like(&[["x", "1"]]));
        let before = reg.disk_quota("mine");
        assert_eq!(reg.remove("mine"), RemoveOutcome::Removed);
        reg.insert("mine", csv_like(&[["y", "2"]]));
        assert!(!Arc::ptr_eq(&before, &reg.disk_quota("mine")));
    }

    #[test]
    fn code_only_uploads_fall_back_to_static_entries() {
        let reg = DatasetRegistry::new();
        let r = Relation::from_codes(Schema::new(["A"]).unwrap(), vec![vec![0, 0, 1]]).unwrap();
        reg.insert("raw", r);
        assert!(reg.get("raw").is_some());
        assert!(reg.engine("raw").is_none(), "no values, no engine");
    }

    #[test]
    fn reupload_starts_a_fresh_generation_lineage() {
        let reg = DatasetRegistry::new();
        reg.insert("gen", csv_like(&[["a", "1"]]));
        let e1 = reg.engine("gen").unwrap();
        reg.insert("gen", csv_like(&[["b", "2"], ["c", "3"]]));
        let e2 = reg.engine("gen").unwrap();
        assert!(!Arc::ptr_eq(&e1, &e2), "replacement replaces the engine");
        assert_eq!(e2.generation(), 0, "fresh lineage starts at generation 0");
        assert_eq!(reg.get("gen").unwrap().num_rows(), 2);
    }
}
