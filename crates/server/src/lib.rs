#![deny(unsafe_code)]
//! `tane-server`: a long-running FD discovery service on `std::net` +
//! `std::thread`.
//!
//! The paper's algorithm is batch-shaped: load a relation, walk the
//! lattice, print the cover. This crate wraps it as a *service* — the shape
//! in which dependency discovery is actually consumed by data-profiling
//! pipelines: datasets are registered once, then queried repeatedly at
//! different thresholds and LHS caps. The expensive object (the search) is
//! cached by `(dataset content hash, normalized query)` and deduplicated
//! in flight, so a burst of identical queries costs one lattice walk.
//!
//! Everything is built on the standard library — the offline build permits
//! no external crates, so the HTTP layer, job queue, and JSON codec are
//! hand-rolled (the latter lives in `tane_util::json`).
//!
//! * [`http`] — minimal HTTP/1.1 request reader / response writer:
//!   keep-alive + pipelining on a persistent per-connection reader, with
//!   strict framing (`Transfer-Encoding` ⇒ 501, duplicate
//!   `Content-Length` ⇒ 400 — silently mis-framing a body on a reused
//!   connection is a request-smuggling vector).
//! * [`queue`] — bounded MPMC job queue (full ⇒ HTTP 429, never OOM).
//! * [`cache`] — single-flight result cache with cost-aware eviction
//!   (cheapest-to-recompute entries go first).
//! * [`registry`] — named datasets: built-ins + CSV uploads.
//! * [`metrics`] — counters behind `/metrics`, including connection
//!   reuse/shed counts, cache eviction cost, per-level search timings and
//!   partition-spill bytes threaded up from `tane-core` / `tane-partition`.
//! * [`server`] — accept loop (bounded by a connection semaphore; excess
//!   connections shed with 503 + `Retry-After`), persistent-connection
//!   handlers, worker pool, routing, graceful shutdown.
//!
//! Endpoints: `GET /health`, `GET /metrics`, `GET /datasets`,
//! `POST /datasets/{name}` (CSV body), `POST /discover` (JSON body),
//! `POST /shutdown`. Start one with `tane serve` or [`Server::start`].

pub mod cache;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod registry;
pub mod server;

pub use server::{install_signal_handlers, Server, ServerConfig};
