//! A minimal HTTP/1.1 server-side reader/writer over `std::net`.
//!
//! The offline build bars every external crate, so the service speaks the
//! wire protocol directly — the same spirit in which `tane-cli` hand-rolls
//! its flag parser. Only the subset the service needs is implemented: one
//! request per connection (`Connection: close`), `Content-Length` bodies,
//! no chunked encoding, no keep-alive. That subset is enough for `curl`,
//! for the test clients, and for anything speaking plain HTTP/1.1.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use tane_util::Json;

/// Upper bound on the request line + headers, independent of the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, and the (bounded) body.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …, uppercase as received.
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when the request has none).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line or headers.
    Bad(String),
    /// Body or head exceeded the configured bound.
    TooLarge,
    /// Socket-level failure (including read timeout).
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// Reads one request from `stream`, rejecting bodies over `max_body_bytes`.
pub fn read_request(stream: &mut TcpStream, max_body_bytes: usize) -> Result<Request, RequestError> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    take_line(&mut reader, &mut line)?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| RequestError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!("unsupported version {version:?}")));
    }
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        take_line(&mut reader, &mut line)?;
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| RequestError::Bad(format!("bad content-length {value:?}")))?;
            }
        }
    }

    if content_length > max_body_bytes {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Request { method, path, body })
}

/// Reads one CRLF-terminated line, without the terminator, bounded.
fn take_line(reader: &mut BufReader<&mut TcpStream>, line: &mut String) -> Result<(), RequestError> {
    let mut raw = Vec::new();
    let mut limited = reader.take(MAX_HEAD_BYTES as u64 + 2);
    let n = limited.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(RequestError::Bad("connection closed mid-request".into()));
    }
    if !raw.ends_with(b"\n") {
        return Err(RequestError::TooLarge);
    }
    while raw.last() == Some(&b'\n') || raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *line = String::from_utf8(raw).map_err(|_| RequestError::Bad("non-UTF-8 header".into()))?;
    Ok(())
}

/// One response, written in full and then the connection closes.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes; `Content-Type: application/json` unless overridden.
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, value: &Json) -> Response {
        Response { status, body: value.render().into_bytes(), extra_headers: Vec::new() }
    }

    /// The standard error shape: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj([("error", Json::Str(message.to_string()))]))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response onto `stream`.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
            self.status,
            status_text(self.status),
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips `raw` through a loopback socket into `read_request`.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            c.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_get() {
        let r = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(
            b"POST /discover HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn rejects_oversized_body_without_reading_it() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 128).unwrap_err();
        assert!(matches!(e, RequestError::TooLarge));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse(b"\r\n\r\n", 128), Err(RequestError::Bad(_))));
        assert!(matches!(parse(b"GET\r\n\r\n", 128), Err(RequestError::Bad(_))));
        assert!(matches!(
            parse(b"GET / SPDY/9\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
    }

    #[test]
    fn response_wire_format() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let reader = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            let mut text = String::new();
            c.read_to_string(&mut text).unwrap();
            text
        });
        let (mut stream, _) = listener.accept().unwrap();
        Response::json(429, &Json::obj([("error", Json::Str("queue full".into()))]))
            .with_header("retry-after", "1")
            .write_to(&mut stream)
            .unwrap();
        drop(stream);
        let text = reader.join().unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));
    }
}
