//! A minimal HTTP/1.1 server-side reader/writer over `std::net`.
//!
//! The offline build bars every external crate, so the service speaks the
//! wire protocol directly — the same spirit in which `tane-cli` hand-rolls
//! its flag parser. Only the subset the service needs is implemented:
//! `Content-Length` bodies and persistent connections (keep-alive is the
//! HTTP/1.1 default, `Connection: close` opts out; HTTP/1.0 clients must
//! opt in). Chunked transfer encoding is *rejected*, not ignored: a body
//! the parser cannot frame would desync every later request on the same
//! connection, so `Transfer-Encoding` is answered 501 and duplicate
//! `Content-Length` headers 400. That subset is enough for `curl`, for the
//! test clients, and for anything speaking plain HTTP/1.1.

use std::io::{self, BufRead, Read, Write};
use tane_util::Json;

/// Upper bound on the request line + headers, independent of the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, body, and connection disposition.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …, uppercase as received.
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when the request has none).
    pub body: Vec<u8>,
    /// Whether the client permits another request on this connection:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, headers, or body framing (HTTP 400).
    Bad(String),
    /// Framing the parser refuses to guess at, e.g. `Transfer-Encoding`
    /// (HTTP 501).
    NotImplemented(String),
    /// Body or head exceeded the configured bound (HTTP 413).
    TooLarge,
    /// The connection was cleanly closed before any byte of this request —
    /// the normal end of a keep-alive connection. Nothing to answer.
    Closed,
    /// The read timed out before any byte of this request arrived — an
    /// idle keep-alive connection. Nothing to answer.
    Idle,
    /// Socket-level failure (including a timeout mid-request).
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// True for the error kinds a socket read timeout produces.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one request from `reader`, rejecting bodies over `max_body_bytes`.
///
/// `reader` is the connection's *persistent* buffered reader: bytes of a
/// pipelined follow-up request that arrive early stay buffered for the
/// next call. A timeout or EOF before the first byte of the request maps
/// to [`RequestError::Idle`] / [`RequestError::Closed`]; either one after
/// the first byte is a hard error, because the stream position is now
/// unknowable and reuse would desync.
pub fn read_request<R: BufRead>(reader: &mut R, max_body_bytes: usize) -> Result<Request, RequestError> {
    let mut raw = Vec::new();
    let mut line = String::new();
    match take_line(reader, &mut raw, &mut line) {
        Ok(()) => {}
        Err(RequestError::Io(e)) if is_timeout(&e) && raw.is_empty() => {
            return Err(RequestError::Idle)
        }
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| RequestError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!("unsupported version {version:?}")));
    }
    let http_10 = version == "HTTP/1.0";
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    let mut conn_close = false;
    let mut conn_keep_alive = false;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        match take_line(reader, &mut raw, &mut line) {
            Ok(()) => {}
            Err(RequestError::Closed) => {
                return Err(RequestError::Bad("connection closed mid-headers".into()))
            }
            Err(e) => return Err(e),
        }
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else { continue };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Bad(format!("bad content-length {value:?}")))?;
            // Duplicate Content-Length — even two equal copies — is the
            // classic request-smuggling ambiguity; refuse outright.
            if let Some(prev) = content_length.replace(n) {
                return Err(RequestError::Bad(format!(
                    "duplicate content-length headers ({prev} and {n})"
                )));
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Silently treating a chunked body as empty would leave the
            // chunks on the wire to be parsed as the "next request".
            return Err(RequestError::NotImplemented(format!(
                "transfer-encoding {:?} not supported; use content-length",
                value.trim()
            )));
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                conn_close |= token.eq_ignore_ascii_case("close");
                conn_keep_alive |= token.eq_ignore_ascii_case("keep-alive");
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let keep_alive = !conn_close && (!http_10 || conn_keep_alive);
    Ok(Request { method, path, body, keep_alive })
}

/// Reads one LF-terminated line into `line`, stripping the `\n` and exactly
/// one optional `\r` before it — a header value may legitimately *end* in a
/// bare CR, and swallowing it would change where the header block ends.
///
/// `raw` is the caller's scratch buffer: on error it holds whatever bytes
/// were consumed before the failure, so the caller can distinguish "nothing
/// arrived" (idle / clean close) from "died mid-line" (desync).
fn take_line<R: BufRead>(
    reader: &mut R,
    raw: &mut Vec<u8>,
    line: &mut String,
) -> Result<(), RequestError> {
    raw.clear();
    let n = reader.by_ref().take(MAX_HEAD_BYTES as u64 + 2).read_until(b'\n', raw)?;
    if n == 0 {
        return Err(RequestError::Closed);
    }
    if !raw.ends_with(b"\n") {
        return if raw.len() >= MAX_HEAD_BYTES + 2 {
            Err(RequestError::TooLarge)
        } else {
            Err(RequestError::Bad("connection closed mid-request".into()))
        };
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *line = String::from_utf8(std::mem::take(raw))
        .map_err(|_| RequestError::Bad("non-UTF-8 header".into()))?;
    Ok(())
}

/// One response; the caller decides whether the connection persists.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes; `Content-Type: application/json` unless overridden.
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, value: &Json) -> Response {
        Response { status, body: value.render().into_bytes(), extra_headers: Vec::new() }
    }

    /// The standard error shape: `{"error": message}`.
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(status, &Json::obj([("error", Json::Str(message.to_string()))]))
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response onto `stream`. `keep_alive` names the
    /// *server's* decision for this connection and is announced in the
    /// `connection:` header so well-behaved clients agree on it.
    pub fn write_to<W: Write>(&self, stream: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// The reason phrase for `status`. Unmapped codes get a non-empty
/// placeholder: an empty phrase would put a bare trailing space on the
/// status line, which some clients reject as malformed.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Parses `raw` as the bytes of one connection; `read_request` is
    /// generic over `BufRead`, so no socket is needed.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.to_vec()), max_body)
    }

    #[test]
    fn parses_get() {
        let r = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(
            b"POST /discover HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_header_decides_persistence() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap();
        assert!(!close.keep_alive);
        let mixed = parse(b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n", 64).unwrap();
        assert!(!mixed.keep_alive, "close wins when both tokens appear");
        let old = parse(b"GET / HTTP/1.0\r\n\r\n", 64).unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_keep = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64).unwrap();
        assert!(old_keep.keep_alive, "HTTP/1.0 may opt in");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let two = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
        let mut reader = Cursor::new(two.to_vec());
        let first = read_request(&mut reader, 1024).unwrap();
        assert_eq!((first.path.as_str(), first.body.as_slice()), ("/a", &b"xyz"[..]));
        let second = read_request(&mut reader, 1024).unwrap();
        assert_eq!(second.path, "/b");
        assert!(matches!(
            read_request(&mut reader, 1024),
            Err(RequestError::Closed)
        ), "clean EOF between requests is Closed, not Bad");
    }

    #[test]
    fn rejects_transfer_encoding_as_unimplemented() {
        let e = parse(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(e, RequestError::NotImplemented(_)), "{e:?}");
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Conflicting values.
        let e = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde",
            1024,
        )
        .unwrap_err();
        assert!(matches!(e, RequestError::Bad(_)), "{e:?}");
        // Even equal duplicates are refused — the ambiguity is the attack.
        let e = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc",
            1024,
        )
        .unwrap_err();
        assert!(matches!(e, RequestError::Bad(_)), "{e:?}");
    }

    #[test]
    fn take_line_strips_exactly_one_cr() {
        let mut reader = Cursor::new(b"value\r\r\n\r\nbare-lf\n".to_vec());
        let (mut raw, mut line) = (Vec::new(), String::new());
        take_line(&mut reader, &mut raw, &mut line).unwrap();
        assert_eq!(line, "value\r", "only the final CR belongs to the terminator");
        take_line(&mut reader, &mut raw, &mut line).unwrap();
        assert_eq!(line, "", "a true CRLF line is still the header terminator");
        take_line(&mut reader, &mut raw, &mut line).unwrap();
        assert_eq!(line, "bare-lf", "lenient bare-LF lines still parse");
    }

    #[test]
    fn rejects_oversized_body_without_reading_it() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 128).unwrap_err();
        assert!(matches!(e, RequestError::TooLarge));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse(b"\r\n\r\n", 128), Err(RequestError::Bad(_))));
        assert!(matches!(parse(b"GET\r\n\r\n", 128), Err(RequestError::Bad(_))));
        assert!(matches!(
            parse(b"GET / SPDY/9\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x", 128),
            Err(RequestError::Bad(_))
        ), "EOF mid-line is a hard error, not a clean close");
    }

    #[test]
    fn idle_and_closed_are_distinguished_on_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // A connected client that sends nothing: the read times out ⇒ Idle.
        let quiet = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted.set_read_timeout(Some(Duration::from_millis(40))).unwrap();
        let mut reader = std::io::BufReader::new(accepted);
        assert!(matches!(read_request(&mut reader, 128), Err(RequestError::Idle)));

        // The client hangs up without sending anything ⇒ Closed.
        drop(quiet);
        assert!(matches!(read_request(&mut reader, 128), Err(RequestError::Closed)));
    }

    #[test]
    fn response_wire_format() {
        let mut wire = Vec::new();
        Response::json(429, &Json::obj([("error", Json::Str("queue full".into()))]))
            .with_header("retry-after", "1")
            .write_to(&mut wire, false)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));

        let mut wire = Vec::new();
        Response::json(200, &Json::Null).write_to(&mut wire, true).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn unmapped_status_codes_get_a_nonempty_reason() {
        let mut wire = Vec::new();
        Response::json(418, &Json::Null).write_to(&mut wire, false).unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 418 Status\r\n"),
            "no trailing-space status line: {text}"
        );
        assert_eq!(status_text(501), "Not Implemented");
        assert_eq!(status_text(503), "Service Unavailable");
    }
}
