//! A minimal HTTP/1.1 server-side reader/writer over `std::net`.
//!
//! The offline build bars every external crate, so the service speaks the
//! wire protocol directly — the same spirit in which `tane-cli` hand-rolls
//! its flag parser. Only the subset the service needs is implemented:
//! `Content-Length` bodies and persistent connections (keep-alive is the
//! HTTP/1.1 default, `Connection: close` opts out; HTTP/1.0 clients must
//! opt in). Chunked transfer encoding on *requests* is rejected, not
//! ignored: a body the parser cannot frame would desync every later
//! request on the same connection, so `Transfer-Encoding` is answered 501
//! and duplicate `Content-Length` headers 400. On *responses* the server
//! does emit `Transfer-Encoding: chunked` — [`ChunkedBody`] frames a body
//! of unknown length (the level-by-level `/v1/discover` stream) while
//! keeping the connection reusable: the terminating zero-length chunk
//! delimits the body, so keep-alive and pipelining work exactly as with
//! `Content-Length` responses. That subset is enough for `curl`, for the
//! test clients, and for anything speaking plain HTTP/1.1.

use std::io::{self, BufRead, Read, Write};
use tane_util::Json;

/// Upper bound on the request line + headers, independent of the body cap.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request: method, path, body, and connection disposition.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …, uppercase as received.
    pub method: String,
    /// The path component, query string stripped.
    pub path: String,
    /// Raw body bytes (empty when the request has none).
    pub body: Vec<u8>,
    /// Whether the client permits another request on this connection:
    /// HTTP/1.1 unless `Connection: close`, HTTP/1.0 only with
    /// `Connection: keep-alive`.
    pub keep_alive: bool,
    /// The `Content-Type` header's media type, lowercased, parameters
    /// (`; charset=…`) stripped. `None` when the header is absent.
    pub content_type: Option<String>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum RequestError {
    /// Malformed request line, headers, or body framing (HTTP 400).
    Bad(String),
    /// Framing the parser refuses to guess at, e.g. `Transfer-Encoding`
    /// (HTTP 501).
    NotImplemented(String),
    /// Body or head exceeded the configured bound (HTTP 413).
    TooLarge,
    /// The connection was cleanly closed before any byte of this request —
    /// the normal end of a keep-alive connection. Nothing to answer.
    Closed,
    /// The read timed out before any byte of this request arrived — an
    /// idle keep-alive connection. Nothing to answer.
    Idle,
    /// Socket-level failure (including a timeout mid-request).
    Io(io::Error),
}

impl From<io::Error> for RequestError {
    fn from(e: io::Error) -> Self {
        RequestError::Io(e)
    }
}

/// True for the error kinds a socket read timeout produces.
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Reads one request from `reader`, rejecting bodies over `max_body_bytes`.
///
/// `reader` is the connection's *persistent* buffered reader: bytes of a
/// pipelined follow-up request that arrive early stay buffered for the
/// next call. A timeout or EOF before the first byte of the request maps
/// to [`RequestError::Idle`] / [`RequestError::Closed`]; either one after
/// the first byte is a hard error, because the stream position is now
/// unknowable and reuse would desync.
pub fn read_request<R: BufRead>(
    reader: &mut R,
    max_body_bytes: usize,
) -> Result<Request, RequestError> {
    let mut raw = Vec::new();
    let mut line = String::new();
    match take_line(reader, &mut raw, &mut line) {
        Ok(()) => {}
        Err(RequestError::Io(e)) if is_timeout(&e) && raw.is_empty() => {
            return Err(RequestError::Idle)
        }
        Err(e) => return Err(e),
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Bad("empty request line".into()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Bad("missing request target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(RequestError::Bad(format!(
            "unsupported version {version:?}"
        )));
    }
    let http_10 = version == "HTTP/1.0";
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length: Option<usize> = None;
    let mut content_type: Option<String> = None;
    let mut conn_close = false;
    let mut conn_keep_alive = false;
    let mut head_bytes = line.len();
    loop {
        line.clear();
        match take_line(reader, &mut raw, &mut line) {
            Ok(()) => {}
            Err(RequestError::Closed) => {
                return Err(RequestError::Bad("connection closed mid-headers".into()))
            }
            Err(e) => return Err(e),
        }
        if line.is_empty() {
            break;
        }
        head_bytes += line.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge);
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let n = value
                .trim()
                .parse()
                .map_err(|_| RequestError::Bad(format!("bad content-length {value:?}")))?;
            // Duplicate Content-Length — even two equal copies — is the
            // classic request-smuggling ambiguity; refuse outright.
            if let Some(prev) = content_length.replace(n) {
                return Err(RequestError::Bad(format!(
                    "duplicate content-length headers ({prev} and {n})"
                )));
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Silently treating a chunked body as empty would leave the
            // chunks on the wire to be parsed as the "next request".
            return Err(RequestError::NotImplemented(format!(
                "transfer-encoding {:?} not supported; use content-length",
                value.trim()
            )));
        } else if name.eq_ignore_ascii_case("content-type") {
            let media = value
                .split(';')
                .next()
                .unwrap_or("")
                .trim()
                .to_ascii_lowercase();
            if !media.is_empty() {
                content_type = Some(media);
            }
        } else if name.eq_ignore_ascii_case("connection") {
            for token in value.split(',') {
                let token = token.trim();
                conn_close |= token.eq_ignore_ascii_case("close");
                conn_keep_alive |= token.eq_ignore_ascii_case("keep-alive");
            }
        }
    }

    let content_length = content_length.unwrap_or(0);
    if content_length > max_body_bytes {
        return Err(RequestError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let keep_alive = !conn_close && (!http_10 || conn_keep_alive);
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
        content_type,
    })
}

/// Reads one LF-terminated line into `line`, stripping the `\n` and exactly
/// one optional `\r` before it — a header value may legitimately *end* in a
/// bare CR, and swallowing it would change where the header block ends.
///
/// `raw` is the caller's scratch buffer: on error it holds whatever bytes
/// were consumed before the failure, so the caller can distinguish "nothing
/// arrived" (idle / clean close) from "died mid-line" (desync).
fn take_line<R: BufRead>(
    reader: &mut R,
    raw: &mut Vec<u8>,
    line: &mut String,
) -> Result<(), RequestError> {
    raw.clear();
    let n = reader
        .by_ref()
        .take(MAX_HEAD_BYTES as u64 + 2)
        .read_until(b'\n', raw)?;
    if n == 0 {
        return Err(RequestError::Closed);
    }
    if !raw.ends_with(b"\n") {
        return if raw.len() >= MAX_HEAD_BYTES + 2 {
            Err(RequestError::TooLarge)
        } else {
            Err(RequestError::Bad("connection closed mid-request".into()))
        };
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    *line = String::from_utf8(std::mem::take(raw))
        .map_err(|_| RequestError::Bad("non-UTF-8 header".into()))?;
    Ok(())
}

/// One response; the caller decides whether the connection persists.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Body bytes; `Content-Type: application/json` unless overridden.
    pub body: Vec<u8>,
    /// Extra headers, e.g. `Retry-After`.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, value: &Json) -> Response {
        Response {
            status,
            body: value.render().into_bytes(),
            extra_headers: Vec::new(),
        }
    }

    /// The *legacy* error shape: `{"error": message}`. Unversioned routes
    /// answer with this byte-for-byte (clients parse it), as do
    /// connection-level failures that happen before routing (framing
    /// errors, oversized bodies, the connection cap).
    pub fn error(status: u16, message: &str) -> Response {
        Response::json(
            status,
            &Json::obj([("error", Json::Str(message.to_string()))]),
        )
    }

    /// The `/v1` error envelope:
    /// `{"error":{"code":"<stable-slug>","message":"…"}}`. `code` is a
    /// machine-matchable slug that is part of the API contract; `message`
    /// is human-oriented and may change between releases.
    pub fn error_envelope(status: u16, code: &str, message: &str) -> Response {
        Response::json(
            status,
            &Json::obj([(
                "error",
                Json::obj([
                    ("code", Json::Str(code.to_string())),
                    ("message", Json::Str(message.to_string())),
                ]),
            )]),
        )
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers
            .push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response onto `stream`. `keep_alive` names the
    /// *server's* decision for this connection and is announced in the
    /// `connection:` header so well-behaved clients agree on it.
    pub fn write_to<W: Write>(&self, stream: &mut W, keep_alive: bool) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
            self.status,
            status_text(self.status),
            self.body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// A streaming response body using HTTP/1.1 chunked transfer encoding.
///
/// Created by [`ChunkedBody::start`], which writes the response head with
/// `transfer-encoding: chunked` (and *no* `content-length`). Each
/// [`write_chunk`](ChunkedBody::write_chunk) emits one complete chunk and
/// flushes — streaming only helps if bytes actually leave the process —
/// and [`finish`](ChunkedBody::finish) writes the terminating zero-length
/// chunk that delimits the body, which is what keeps the connection
/// reusable afterwards. Dropping the writer without `finish()` leaves the
/// body unterminated; the caller must close the connection in that case
/// (a truncated chunked body is how HTTP signals "this stream died").
#[derive(Debug)]
pub struct ChunkedBody<'a, W: Write> {
    stream: &'a mut W,
    payload_bytes: u64,
}

impl<'a, W: Write> ChunkedBody<'a, W> {
    /// Writes the head of a chunked response and returns the body writer.
    /// `keep_alive` is announced in the `connection:` header exactly as in
    /// [`Response::write_to`]; chunked framing is compatible with both
    /// dispositions.
    pub fn start(
        stream: &'a mut W,
        status: u16,
        extra_headers: &[(String, String)],
        keep_alive: bool,
    ) -> io::Result<ChunkedBody<'a, W>> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\ncontent-type: application/x-ndjson\r\ntransfer-encoding: chunked\r\nconnection: {}\r\n",
            status,
            status_text(status),
            if keep_alive { "keep-alive" } else { "close" },
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedBody {
            stream,
            payload_bytes: 0,
        })
    }

    /// Writes one chunk (size line, payload, CRLF) and flushes it onto the
    /// wire. Empty payloads are skipped — a zero-length chunk would
    /// terminate the body.
    pub fn write_chunk(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.is_empty() {
            return Ok(());
        }
        self.stream
            .write_all(format!("{:x}\r\n", payload.len()).as_bytes())?;
        self.stream.write_all(payload)?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()?;
        self.payload_bytes += payload.len() as u64;
        Ok(())
    }

    /// Payload bytes written so far (chunk contents, not framing).
    pub fn payload_bytes(&self) -> u64 {
        self.payload_bytes
    }

    /// Terminates the body with the zero-length chunk, returning the total
    /// payload bytes streamed. After this the connection is in a clean
    /// state for the next request.
    pub fn finish(self) -> io::Result<u64> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()?;
        Ok(self.payload_bytes)
    }
}

/// The reason phrase for `status`. Unmapped codes get a non-empty
/// placeholder: an empty phrase would put a bare trailing space on the
/// status line, which some clients reject as malformed.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        415 => "Unsupported Media Type",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        507 => "Insufficient Storage",
        _ => "Status",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::{TcpListener, TcpStream};
    use std::time::Duration;

    /// Parses `raw` as the bytes of one connection; `read_request` is
    /// generic over `BufRead`, so no socket is needed.
    fn parse(raw: &[u8], max_body: usize) -> Result<Request, RequestError> {
        read_request(&mut Cursor::new(raw.to_vec()), max_body)
    }

    #[test]
    fn parses_get() {
        let r = parse(b"GET /metrics?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n", 1024).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert!(r.body.is_empty());
        assert!(r.keep_alive, "HTTP/1.1 defaults to keep-alive");
    }

    #[test]
    fn parses_post_with_body() {
        let r = parse(
            b"POST /discover HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"a\":1}",
            1024,
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.body, b"{\"a\":1}");
    }

    #[test]
    fn connection_header_decides_persistence() {
        let close = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 64).unwrap();
        assert!(!close.keep_alive);
        let mixed = parse(
            b"GET / HTTP/1.1\r\nConnection: Keep-Alive, Close\r\n\r\n",
            64,
        )
        .unwrap();
        assert!(!mixed.keep_alive, "close wins when both tokens appear");
        let old = parse(b"GET / HTTP/1.0\r\n\r\n", 64).unwrap();
        assert!(!old.keep_alive, "HTTP/1.0 defaults to close");
        let old_keep = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 64).unwrap();
        assert!(old_keep.keep_alive, "HTTP/1.0 may opt in");
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let two = b"POST /a HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyzGET /b HTTP/1.1\r\n\r\n";
        let mut reader = Cursor::new(two.to_vec());
        let first = read_request(&mut reader, 1024).unwrap();
        assert_eq!(
            (first.path.as_str(), first.body.as_slice()),
            ("/a", &b"xyz"[..])
        );
        let second = read_request(&mut reader, 1024).unwrap();
        assert_eq!(second.path, "/b");
        assert!(
            matches!(read_request(&mut reader, 1024), Err(RequestError::Closed)),
            "clean EOF between requests is Closed, not Bad"
        );
    }

    #[test]
    fn rejects_transfer_encoding_as_unimplemented() {
        let e = parse(
            b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
            1024,
        )
        .unwrap_err();
        assert!(matches!(e, RequestError::NotImplemented(_)), "{e:?}");
    }

    #[test]
    fn rejects_duplicate_content_length() {
        // Conflicting values.
        let e = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 5\r\n\r\nabcde",
            1024,
        )
        .unwrap_err();
        assert!(matches!(e, RequestError::Bad(_)), "{e:?}");
        // Even equal duplicates are refused — the ambiguity is the attack.
        let e = parse(
            b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc",
            1024,
        )
        .unwrap_err();
        assert!(matches!(e, RequestError::Bad(_)), "{e:?}");
    }

    #[test]
    fn take_line_strips_exactly_one_cr() {
        let mut reader = Cursor::new(b"value\r\r\n\r\nbare-lf\n".to_vec());
        let (mut raw, mut line) = (Vec::new(), String::new());
        take_line(&mut reader, &mut raw, &mut line).unwrap();
        assert_eq!(
            line, "value\r",
            "only the final CR belongs to the terminator"
        );
        take_line(&mut reader, &mut raw, &mut line).unwrap();
        assert_eq!(line, "", "a true CRLF line is still the header terminator");
        take_line(&mut reader, &mut raw, &mut line).unwrap();
        assert_eq!(line, "bare-lf", "lenient bare-LF lines still parse");
    }

    #[test]
    fn rejects_oversized_body_without_reading_it() {
        let e = parse(b"POST /x HTTP/1.1\r\nContent-Length: 999999\r\n\r\n", 128).unwrap_err();
        assert!(matches!(e, RequestError::TooLarge));
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(parse(b"\r\n\r\n", 128), Err(RequestError::Bad(_))));
        assert!(matches!(
            parse(b"GET\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"GET / SPDY/9\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n", 128),
            Err(RequestError::Bad(_))
        ));
        assert!(
            matches!(
                parse(b"GET / HTTP/1.1\r\nHost: x", 128),
                Err(RequestError::Bad(_))
            ),
            "EOF mid-line is a hard error, not a clean close"
        );
    }

    #[test]
    fn idle_and_closed_are_distinguished_on_a_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // A connected client that sends nothing: the read times out ⇒ Idle.
        let quiet = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        accepted
            .set_read_timeout(Some(Duration::from_millis(40)))
            .unwrap();
        let mut reader = std::io::BufReader::new(accepted);
        assert!(matches!(
            read_request(&mut reader, 128),
            Err(RequestError::Idle)
        ));

        // The client hangs up without sending anything ⇒ Closed.
        drop(quiet);
        assert!(matches!(
            read_request(&mut reader, 128),
            Err(RequestError::Closed)
        ));
    }

    #[test]
    fn response_wire_format() {
        let mut wire = Vec::new();
        Response::json(429, &Json::obj([("error", Json::Str("queue full".into()))]))
            .with_header("retry-after", "1")
            .write_to(&mut wire, false)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"),
            "{text}"
        );
        assert!(text.contains("connection: close\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.ends_with("{\"error\":\"queue full\"}"));

        let mut wire = Vec::new();
        Response::json(200, &Json::Null)
            .write_to(&mut wire, true)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(text.contains("connection: keep-alive\r\n"), "{text}");
    }

    #[test]
    fn content_type_is_parsed_and_normalized() {
        let r = parse(
            b"POST /x HTTP/1.1\r\nContent-Type: Application/JSON; charset=utf-8\r\n\r\n",
            64,
        )
        .unwrap();
        assert_eq!(r.content_type.as_deref(), Some("application/json"));
        let r = parse(b"GET / HTTP/1.1\r\n\r\n", 64).unwrap();
        assert_eq!(r.content_type, None);
    }

    #[test]
    fn error_envelope_shape() {
        let body = Response::error_envelope(404, "unknown-dataset", "no such dataset `x`").body;
        let doc = Json::parse(std::str::from_utf8(&body).unwrap()).unwrap();
        let err = doc.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("unknown-dataset"));
        assert_eq!(
            err.get("message").unwrap().as_str(),
            Some("no such dataset `x`")
        );
    }

    #[test]
    fn chunked_body_wire_format() {
        let mut wire = Vec::new();
        let mut body = ChunkedBody::start(&mut wire, 200, &[], true).unwrap();
        body.write_chunk(b"{\"level\":1}\n").unwrap();
        body.write_chunk(b"").unwrap(); // skipped: would terminate the body
        body.write_chunk(b"{\"level\":2}\n").unwrap();
        assert_eq!(body.payload_bytes(), 24);
        let total = body.finish().unwrap();
        assert_eq!(total, 24);
        let text = String::from_utf8(wire).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked\r\n"));
        assert!(text.contains("content-type: application/x-ndjson\r\n"));
        assert!(text.contains("connection: keep-alive\r\n"));
        assert!(
            !text.contains("content-length"),
            "chunked bodies carry no content-length"
        );
        let payload = text.splitn(2, "\r\n\r\n").nth(1).unwrap();
        assert_eq!(
            payload,
            "c\r\n{\"level\":1}\n\r\nc\r\n{\"level\":2}\n\r\n0\r\n\r\n"
        );
    }

    #[test]
    fn unmapped_status_codes_get_a_nonempty_reason() {
        let mut wire = Vec::new();
        Response::json(418, &Json::Null)
            .write_to(&mut wire, false)
            .unwrap();
        let text = String::from_utf8(wire).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 418 Status\r\n"),
            "no trailing-space status line: {text}"
        );
        assert_eq!(status_text(501), "Not Implemented");
        assert_eq!(status_text(503), "Service Unavailable");
    }
}
