//! A bounded multi-producer multi-consumer job queue on `Mutex` + `Condvar`.
//!
//! Producers (connection handlers) never block: a full queue is an
//! immediate [`PushError::Full`], which the handler surfaces as HTTP 429 —
//! overload sheds load instead of growing memory. Consumers (the worker
//! pool) block until a job or shutdown arrives. `close()` wakes every
//! consumer and hands back the undrained jobs so the server can fail their
//! waiters instead of leaving them hanging.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue was closed by shutdown.
    Closed,
}

struct Inner<T> {
    jobs: VecDeque<T>,
    closed: bool,
}

/// The bounded queue. `T` is one unit of work.
pub struct JobQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue refusing pushes beyond `capacity` pending jobs.
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            inner: Mutex::new(Inner {
                jobs: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues a job, or refuses immediately.
    pub fn push(&self, job: T) -> Result<(), (T, PushError)> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err((job, PushError::Closed));
        }
        if inner.jobs.len() >= self.capacity {
            return Err((job, PushError::Full));
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (`Some`) or the queue is closed and
    /// drained (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Pending jobs right now.
    pub fn depth(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .len()
    }

    /// Maximum pending jobs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Closes the queue: wakes all consumers and returns the jobs nobody
    /// will run. Workers still finish the job they already popped.
    pub fn close(&self) -> Vec<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.closed = true;
        let drained = inner.jobs.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order() {
        let q = JobQueue::new(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses() {
        let q = JobQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        let (job, e) = q.push(3).unwrap_err();
        assert_eq!((job, e), (3, PushError::Full));
        // Popping frees a slot.
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn close_wakes_blocked_consumers_and_returns_backlog() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(7).unwrap();
        assert_eq!(consumer.join().unwrap(), Some(7));
        q.push(8).unwrap();
        let backlog = q.close();
        assert_eq!(backlog, vec![8]);
        assert_eq!(q.pop(), None);
        assert!(matches!(q.push(9), Err((9, PushError::Closed))));
    }

    #[test]
    fn many_producers_many_consumers() {
        let q = Arc::new(JobQueue::new(1024));
        let mut producers = Vec::new();
        for p in 0..8u32 {
            let q = Arc::clone(&q);
            producers.push(std::thread::spawn(move || {
                for i in 0..100 {
                    q.push(p * 100 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(j) = q.pop() {
                    got.push(j);
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        // Producers done; drain whatever is left, then close.
        while q.depth() > 0 {
            std::thread::yield_now();
        }
        q.close();
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), 800);
        all.dedup();
        assert_eq!(all.len(), 800, "every job delivered exactly once");
    }
}
