//! The result cache with single-flight deduplication.
//!
//! Keyed by `(dataset content hash, normalized query)`: two requests with
//! the same key are guaranteed the same dependency cover, because the code
//! columns determine every partition and the normalized query keeps only
//! the result-relevant knobs (ε and the LHS cap — storage backend and
//! thread count change *how* the search runs, never *what* it finds).
//!
//! Single-flight: the first requester of a key **claims** it and enqueues
//! the one job; concurrent requesters for the same key become **waiters**
//! on the claimer's flight and are all answered by that single run. A
//! thundering herd of identical queries costs one search.
//!
//! Eviction is **cost-aware**, not FIFO: when the cache is over capacity
//! the entry with the lowest `compute_secs` goes first (ties broken by
//! age, oldest first). A cached 40-second lattice walk is worth far more
//! than a cached 2-millisecond one — recomputing the cheap entry on a
//! future miss costs almost nothing, recomputing the expensive one stalls
//! a worker for its full duration again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tane_util::{FxHashMap, FxHashSet, Json};

/// The normalized cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `Relation::content_hash()` of the dataset.
    pub dataset_hash: u64,
    /// `epsilon.to_bits()` for approximate queries, `None` for exact.
    pub epsilon_bits: Option<u64>,
    /// The LHS size cap, if any.
    pub max_lhs: Option<usize>,
    /// Heap size for ranked (top-k) queries, `None` for exact/approximate.
    /// Part of the key: a top-5 heap is not a prefix proof for top-10, and
    /// replayed `topk` stream lines must match the recorded `k` exactly.
    pub top_k: Option<usize>,
}

/// A finished discovery, shaped for the HTTP response (schema already
/// applied, statistics already JSON).
#[derive(Debug)]
pub struct CachedResult {
    /// Rendered dependencies, canonical order — byte-identical to the
    /// lines `tane discover` prints.
    pub fds: Vec<String>,
    /// Rendered candidate keys.
    pub keys: Vec<String>,
    /// The search statistics, pre-serialized.
    pub stats: Json,
    /// Wall-clock seconds the search itself took.
    pub compute_secs: f64,
    /// The NDJSON level lines (one per lattice level, no trailing
    /// newline), rendered once by the worker as the search ran. Streaming
    /// cache hits and single-flight followers replay these, so a replayed
    /// stream is byte-identical to the live one.
    pub levels: Vec<String>,
    /// Ranked (top-k) queries only: the final heap, best first, already
    /// JSON (`[{"fd","g3","g3_rows"},...]`). `None` for exact/approximate
    /// results, whose response and trailer bytes must not change.
    pub ranked: Option<Json>,
}

/// How a job run ended, as seen by everyone waiting on its flight.
pub type JobResult = Result<Arc<CachedResult>, String>;

/// One in-flight computation; waiters block on `done`.
pub struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, result: JobResult) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = Some(result);
        self.done.notify_all();
    }

    /// Blocks until the flight lands or `timeout` elapses (`None`).
    pub fn wait(&self, timeout: Duration) -> Option<JobResult> {
        let mut slot = self.slot.lock().unwrap_or_else(|e| e.into_inner());
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, wait) = self
                .done
                .wait_timeout(slot, left)
                .unwrap_or_else(|e| e.into_inner());
            slot = guard;
            if wait.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

enum Entry {
    /// A landed result, stamped with its insertion sequence number (the
    /// eviction tie-breaker: equal-cost entries leave oldest-first).
    Ready {
        result: Arc<CachedResult>,
        seq: u64,
    },
    InFlight(Arc<Flight>),
}

struct Inner {
    map: FxHashMap<CacheKey, Entry>,
    /// Ready entries currently in `map` (in-flight ones don't count
    /// against capacity — they hold no result yet).
    ready: usize,
    /// Monotonic insertion counter for eviction tie-breaks.
    seq: u64,
    /// Ready entries evicted so far.
    evictions: u64,
    /// Total `compute_secs` thrown away by those evictions — the price a
    /// cold re-query of every evicted entry would pay.
    evicted_compute_secs: f64,
    /// Dataset hashes declared stale by a patch or re-upload: eagerly
    /// evicted Ready entries plus suppressed late publishes (see
    /// [`ResultCache::evict_dataset`]).
    evicted_stale: u64,
    /// Dataset content hashes that no longer name a live generation. A
    /// publish for one of these delivers to its waiters but never (re)enters
    /// the cache, so an in-flight job on an old generation completes
    /// coherently without resurrecting stale results.
    stale: FxHashSet<u64>,
}

impl Inner {
    /// Removes the Ready entry with the lowest `(compute_secs, seq)` —
    /// cheapest to recompute first, oldest first among equals. Linear in
    /// the entry count, which is bounded by the (small) cache capacity
    /// and only paid on inserts past capacity.
    fn evict_cheapest(&mut self) {
        let victim = self
            .map
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Ready { result, seq } => Some((result.compute_secs, *seq, *k)),
                Entry::InFlight(_) => None,
            })
            .reduce(|a, b| if (b.0, b.1) < (a.0, a.1) { b } else { a });
        if let Some((cost, _, key)) = victim {
            self.map.remove(&key);
            self.ready -= 1;
            self.evictions += 1;
            self.evicted_compute_secs += cost;
        } else {
            self.ready = 0; // no Ready entries at all; resync the counter
        }
    }
}

/// A point-in-time snapshot of the cache counters, for `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheStats {
    /// Lookups served straight from a Ready entry.
    pub hits: u64,
    /// Lookups deduplicated onto another request's flight.
    pub coalesced: u64,
    /// Lookups that claimed the key and triggered a search.
    pub misses: u64,
    /// Ready entries currently held.
    pub entries: usize,
    /// Ready entries evicted to stay within capacity.
    pub evictions: u64,
    /// Sum of `compute_secs` over all evicted entries.
    pub evicted_compute_secs: f64,
    /// Results dropped because their dataset generation went stale: eager
    /// evictions on patch/re-upload plus late publishes that were
    /// suppressed.
    pub evicted_stale: u64,
}

/// What a lookup decided.
pub enum Lookup {
    /// Cached result, returned immediately.
    Hit(Arc<CachedResult>),
    /// Someone else is computing this key; wait on their flight.
    Wait(Arc<Flight>),
    /// The caller claimed the key and must enqueue the one job (or
    /// [`ResultCache::abort`] on failure to do so).
    Claimed(Arc<Flight>),
}

/// The bounded cache.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` finished results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                ready: 0,
                seq: 0,
                evictions: 0,
                evicted_compute_secs: 0.0,
                evicted_stale: 0,
                stale: FxHashSet::default(),
            }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Resolves `key` to a hit, a wait, or a claim (see [`Lookup`]).
    pub fn lookup_or_claim(&self, key: CacheKey) -> Lookup {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.map.get(&key) {
            Some(Entry::Ready { result, .. }) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Arc::clone(result))
            }
            Some(Entry::InFlight(flight)) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Lookup::Wait(Arc::clone(flight))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let flight = Flight::new();
                inner.map.insert(key, Entry::InFlight(Arc::clone(&flight)));
                Lookup::Claimed(flight)
            }
        }
    }

    /// Lands the flight for `key`: successes enter the cache (evicting the
    /// cheapest-to-recompute entries if over capacity), failures are
    /// delivered to the waiters and the key is released for retry.
    pub fn publish(&self, key: CacheKey, result: JobResult) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let flight = match inner.map.get(&key) {
            Some(Entry::InFlight(f)) => Some(Arc::clone(f)),
            _ => None,
        };
        match &result {
            Ok(_) if inner.stale.contains(&key.dataset_hash) => {
                // The dataset moved on while this job ran: hand the result
                // to everyone already waiting (it is correct for the
                // generation they asked about) but keep it out of the cache.
                if flight.is_some() {
                    inner.map.remove(&key);
                }
                inner.evicted_stale += 1;
            }
            Ok(cached) => {
                inner.seq += 1;
                let seq = inner.seq;
                if inner
                    .map
                    .insert(
                        key,
                        Entry::Ready {
                            result: Arc::clone(cached),
                            seq,
                        },
                    )
                    .is_none_or(|prev| matches!(prev, Entry::InFlight(_)))
                {
                    inner.ready += 1;
                }
                while inner.ready > self.capacity {
                    inner.evict_cheapest();
                }
            }
            Err(_) => {
                if flight.is_some() {
                    inner.map.remove(&key);
                }
            }
        }
        drop(inner);
        if let Some(f) = flight {
            f.fill(result);
        }
    }

    /// Releases a claim that never became a job (queue full / shutdown),
    /// failing any waiters that piled on in the meantime.
    pub fn abort(&self, key: CacheKey, reason: &str) {
        self.publish(key, Err(reason.to_string()));
    }

    /// Generation-bump invalidation: eagerly evicts every Ready entry of
    /// `dataset_hash` and marks the hash stale, so a job that started
    /// before the bump still answers its waiters but never re-enters the
    /// cache. In-flight entries are left alone (their flights must land).
    /// Returns the number of Ready entries evicted.
    pub fn evict_dataset(&self, dataset_hash: u64) -> usize {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let victims: Vec<CacheKey> = inner
            .map
            .iter()
            .filter_map(|(k, e)| {
                (k.dataset_hash == dataset_hash && matches!(e, Entry::Ready { .. })).then_some(*k)
            })
            .collect();
        for k in &victims {
            inner.map.remove(k);
            inner.ready -= 1;
        }
        inner.evicted_stale += victims.len() as u64;
        inner.stale.insert(dataset_hash);
        victims.len()
    }

    /// Declares `dataset_hash` current again — a fresh upload or the merged
    /// generation after a patch. Results for it may cache normally (also
    /// when old content reappears verbatim under a re-upload).
    pub fn mark_fresh(&self, dataset_hash: u64) {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .stale
            .remove(&dataset_hash);
    }

    /// A snapshot of every cache counter (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        let (entries, evictions, evicted_compute_secs, evicted_stale) = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            (
                inner.ready,
                inner.evictions,
                inner.evicted_compute_secs,
                inner.evicted_stale,
            )
        };
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
            evictions,
            evicted_compute_secs,
            evicted_stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u64) -> CacheKey {
        CacheKey {
            dataset_hash: h,
            epsilon_bits: None,
            max_lhs: None,
            top_k: None,
        }
    }

    fn result(tag: &str) -> Arc<CachedResult> {
        costed(tag, 0.0)
    }

    fn costed(tag: &str, compute_secs: f64) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            fds: vec![tag.to_string()],
            keys: vec![],
            stats: Json::Null,
            compute_secs,
            levels: vec![],
            ranked: None,
        })
    }

    #[test]
    fn claim_publish_hit() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(1)) else {
            panic!("first lookup must claim");
        };
        c.publish(key(1), Ok(result("r1")));
        assert_eq!(
            flight.wait(Duration::from_secs(1)).unwrap().unwrap().fds,
            ["r1"]
        );
        let Lookup::Hit(got) = c.lookup_or_claim(key(1)) else {
            panic!("second lookup must hit");
        };
        assert_eq!(got.fds, ["r1"]);
        let s = c.stats();
        assert_eq!((s.hits, s.coalesced, s.misses, s.entries), (1, 0, 1, 1));
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn concurrent_lookups_coalesce() {
        let c = Arc::new(ResultCache::new(8));
        let Lookup::Claimed(_) = c.lookup_or_claim(key(2)) else {
            panic!("claim");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || match c.lookup_or_claim(key(2)) {
                    Lookup::Wait(f) => f.wait(Duration::from_secs(5)).unwrap().unwrap().fds.clone(),
                    _ => panic!("must coalesce"),
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        c.publish(key(2), Ok(result("shared")));
        for w in waiters {
            assert_eq!(w.join().unwrap(), ["shared"]);
        }
        let s = c.stats();
        assert_eq!((s.hits, s.coalesced, s.misses), (0, 4, 1));
    }

    #[test]
    fn failure_releases_the_key() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(3)) else {
            panic!("claim");
        };
        c.abort(key(3), "queue full");
        assert_eq!(
            flight.wait(Duration::from_secs(1)).unwrap().unwrap_err(),
            "queue full"
        );
        // The key can be claimed again.
        assert!(matches!(c.lookup_or_claim(key(3)), Lookup::Claimed(_)));
    }

    #[test]
    fn wait_times_out_without_publish() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(4)) else {
            panic!("claim");
        };
        assert!(flight.wait(Duration::from_millis(30)).is_none());
    }

    #[test]
    fn eviction_prefers_keeping_expensive_entries() {
        let c = ResultCache::new(2);
        // An expensive search lands first, then a stream of cheap ones.
        let costs = [(1u64, 40.0), (2, 0.01), (3, 0.02), (4, 0.03)];
        for (h, secs) in costs {
            let Lookup::Claimed(_) = c.lookup_or_claim(key(h)) else {
                panic!("claim")
            };
            c.publish(key(h), Ok(costed(&h.to_string(), secs)));
        }
        let s = c.stats();
        assert_eq!(s.entries, 2, "capacity is still a hard bound");
        assert_eq!(s.evictions, 2);
        assert!(
            (s.evicted_compute_secs - 0.03).abs() < 1e-12,
            "{}",
            s.evicted_compute_secs
        );
        assert!(
            matches!(c.lookup_or_claim(key(1)), Lookup::Hit(_)),
            "the 40s search survives every cheap insert"
        );
        assert!(
            matches!(c.lookup_or_claim(key(4)), Lookup::Hit(_)),
            "the priciest of the cheap entries is the other survivor"
        );
        assert!(
            matches!(c.lookup_or_claim(key(2)), Lookup::Claimed(_)),
            "cheapest evicted"
        );
    }

    #[test]
    fn equal_cost_eviction_falls_back_to_fifo() {
        let c = ResultCache::new(2);
        for h in 0..5 {
            let Lookup::Claimed(_) = c.lookup_or_claim(key(h)) else {
                panic!("claim")
            };
            c.publish(key(h), Ok(costed(&h.to_string(), 1.0)));
        }
        assert_eq!(c.stats().entries, 2);
        assert!(
            matches!(c.lookup_or_claim(key(4)), Lookup::Hit(_)),
            "newest survives"
        );
        assert!(
            matches!(c.lookup_or_claim(key(0)), Lookup::Claimed(_)),
            "oldest evicted"
        );
    }

    #[test]
    fn republishing_a_key_does_not_inflate_the_entry_count() {
        let c = ResultCache::new(4);
        for _ in 0..3 {
            // Publish the same key repeatedly (an abort + retry cycle).
            let _ = c.lookup_or_claim(key(7));
            c.publish(key(7), Ok(costed("again", 1.0)));
        }
        assert_eq!(c.stats().entries, 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn evict_dataset_drops_ready_entries_eagerly() {
        let c = ResultCache::new(8);
        // Two queries on dataset 1, one on dataset 2.
        for k in [
            key(1),
            CacheKey {
                dataset_hash: 1,
                epsilon_bits: Some(0.1f64.to_bits()),
                max_lhs: None,
                top_k: None,
            },
            key(2),
        ] {
            let Lookup::Claimed(_) = c.lookup_or_claim(k) else {
                panic!("claim")
            };
            c.publish(k, Ok(result("r")));
        }
        assert_eq!(c.evict_dataset(1), 2, "both dataset-1 entries evicted");
        let s = c.stats();
        assert_eq!(s.entries, 1, "dataset 2 untouched");
        assert_eq!(s.evicted_stale, 2);
        assert_eq!(s.evictions, 0, "capacity evictions are a separate counter");
        assert!(matches!(c.lookup_or_claim(key(1)), Lookup::Claimed(_)));
        assert!(matches!(c.lookup_or_claim(key(2)), Lookup::Hit(_)));
    }

    #[test]
    fn late_publish_on_stale_generation_answers_waiters_but_never_caches() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(5)) else {
            panic!("claim")
        };
        // The dataset is patched while the job runs.
        assert_eq!(c.evict_dataset(5), 0, "nothing Ready yet");
        c.publish(key(5), Ok(result("old-gen")));
        // The waiter still gets the coherent old-generation answer…
        assert_eq!(
            flight.wait(Duration::from_secs(1)).unwrap().unwrap().fds,
            ["old-gen"]
        );
        // …but the cache holds nothing for the stale hash.
        assert!(matches!(c.lookup_or_claim(key(5)), Lookup::Claimed(_)));
        assert_eq!(c.stats().evicted_stale, 1);
        // Re-marking the hash fresh (same content re-uploaded) re-enables
        // caching.
        c.mark_fresh(5);
        c.publish(key(5), Ok(result("fresh")));
        assert!(matches!(c.lookup_or_claim(key(5)), Lookup::Hit(_)));
    }

    #[test]
    fn distinct_queries_do_not_share_entries() {
        let approx = CacheKey {
            dataset_hash: 9,
            epsilon_bits: Some(0.1f64.to_bits()),
            max_lhs: None,
            top_k: None,
        };
        let exact = CacheKey {
            dataset_hash: 9,
            epsilon_bits: None,
            max_lhs: None,
            top_k: None,
        };
        let limited = CacheKey {
            dataset_hash: 9,
            epsilon_bits: None,
            max_lhs: Some(2),
            top_k: None,
        };
        let c = ResultCache::new(8);
        for k in [approx, exact, limited] {
            assert!(matches!(c.lookup_or_claim(k), Lookup::Claimed(_)));
        }
    }
}
