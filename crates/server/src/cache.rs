//! The result cache with single-flight deduplication.
//!
//! Keyed by `(dataset content hash, normalized query)`: two requests with
//! the same key are guaranteed the same dependency cover, because the code
//! columns determine every partition and the normalized query keeps only
//! the result-relevant knobs (ε and the LHS cap — storage backend and
//! thread count change *how* the search runs, never *what* it finds).
//!
//! Single-flight: the first requester of a key **claims** it and enqueues
//! the one job; concurrent requesters for the same key become **waiters**
//! on the claimer's flight and are all answered by that single run. A
//! thundering herd of identical queries costs one search.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;
use tane_util::{FxHashMap, Json};

/// The normalized cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// `Relation::content_hash()` of the dataset.
    pub dataset_hash: u64,
    /// `epsilon.to_bits()` for approximate queries, `None` for exact.
    pub epsilon_bits: Option<u64>,
    /// The LHS size cap, if any.
    pub max_lhs: Option<usize>,
}

/// A finished discovery, shaped for the HTTP response (schema already
/// applied, statistics already JSON).
#[derive(Debug)]
pub struct CachedResult {
    /// Rendered dependencies, canonical order — byte-identical to the
    /// lines `tane discover` prints.
    pub fds: Vec<String>,
    /// Rendered candidate keys.
    pub keys: Vec<String>,
    /// The search statistics, pre-serialized.
    pub stats: Json,
    /// Wall-clock seconds the search itself took.
    pub compute_secs: f64,
}

/// How a job run ended, as seen by everyone waiting on its flight.
pub type JobResult = Result<Arc<CachedResult>, String>;

/// One in-flight computation; waiters block on `done`.
pub struct Flight {
    slot: Mutex<Option<JobResult>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Arc<Flight> {
        Arc::new(Flight { slot: Mutex::new(None), done: Condvar::new() })
    }

    fn fill(&self, result: JobResult) {
        *self.slot.lock().expect("flight poisoned") = Some(result);
        self.done.notify_all();
    }

    /// Blocks until the flight lands or `timeout` elapses (`None`).
    pub fn wait(&self, timeout: Duration) -> Option<JobResult> {
        let mut slot = self.slot.lock().expect("flight poisoned");
        let deadline = std::time::Instant::now() + timeout;
        loop {
            if let Some(result) = slot.as_ref() {
                return Some(result.clone());
            }
            let left = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, wait) = self.done.wait_timeout(slot, left).expect("flight poisoned");
            slot = guard;
            if wait.timed_out() && slot.is_none() {
                return None;
            }
        }
    }
}

enum Entry {
    Ready(Arc<CachedResult>),
    InFlight(Arc<Flight>),
}

struct Inner {
    map: FxHashMap<CacheKey, Entry>,
    /// Insertion order of Ready entries, for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// What a lookup decided.
pub enum Lookup {
    /// Cached result, returned immediately.
    Hit(Arc<CachedResult>),
    /// Someone else is computing this key; wait on their flight.
    Wait(Arc<Flight>),
    /// The caller claimed the key and must enqueue the one job (or
    /// [`ResultCache::abort`] on failure to do so).
    Claimed(Arc<Flight>),
}

/// The bounded cache.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `capacity` finished results.
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner { map: FxHashMap::default(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Resolves `key` to a hit, a wait, or a claim (see [`Lookup`]).
    pub fn lookup_or_claim(&self, key: CacheKey) -> Lookup {
        let mut inner = self.inner.lock().expect("cache poisoned");
        match inner.map.get(&key) {
            Some(Entry::Ready(result)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Lookup::Hit(Arc::clone(result))
            }
            Some(Entry::InFlight(flight)) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                Lookup::Wait(Arc::clone(flight))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                let flight = Flight::new();
                inner.map.insert(key, Entry::InFlight(Arc::clone(&flight)));
                Lookup::Claimed(flight)
            }
        }
    }

    /// Lands the flight for `key`: successes enter the cache, failures are
    /// delivered to the waiters and the key is released for retry.
    pub fn publish(&self, key: CacheKey, result: JobResult) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        let flight = match inner.map.get(&key) {
            Some(Entry::InFlight(f)) => Some(Arc::clone(f)),
            _ => None,
        };
        match &result {
            Ok(cached) => {
                inner.map.insert(key, Entry::Ready(Arc::clone(cached)));
                inner.order.push_back(key);
                while inner.order.len() > self.capacity {
                    let oldest = inner.order.pop_front().expect("len checked");
                    if matches!(inner.map.get(&oldest), Some(Entry::Ready(_))) {
                        inner.map.remove(&oldest);
                    }
                }
            }
            Err(_) => {
                if flight.is_some() {
                    inner.map.remove(&key);
                }
            }
        }
        drop(inner);
        if let Some(f) = flight {
            f.fill(result);
        }
    }

    /// Releases a claim that never became a job (queue full / shutdown),
    /// failing any waiters that piled on in the meantime.
    pub fn abort(&self, key: CacheKey, reason: &str) {
        self.publish(key, Err(reason.to_string()));
    }

    /// `(hits, coalesced, misses, entries)` — hits are served-from-cache,
    /// coalesced are deduplicated onto another request's flight, misses
    /// triggered a search.
    pub fn stats(&self) -> (u64, u64, u64, usize) {
        let entries = {
            let inner = self.inner.lock().expect("cache poisoned");
            inner.map.iter().filter(|(_, e)| matches!(e, Entry::Ready(_))).count()
        };
        (
            self.hits.load(Ordering::Relaxed),
            self.coalesced.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            entries,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(h: u64) -> CacheKey {
        CacheKey { dataset_hash: h, epsilon_bits: None, max_lhs: None }
    }

    fn result(tag: &str) -> Arc<CachedResult> {
        Arc::new(CachedResult {
            fds: vec![tag.to_string()],
            keys: vec![],
            stats: Json::Null,
            compute_secs: 0.0,
        })
    }

    #[test]
    fn claim_publish_hit() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(1)) else {
            panic!("first lookup must claim");
        };
        c.publish(key(1), Ok(result("r1")));
        assert_eq!(flight.wait(Duration::from_secs(1)).unwrap().unwrap().fds, ["r1"]);
        let Lookup::Hit(got) = c.lookup_or_claim(key(1)) else {
            panic!("second lookup must hit");
        };
        assert_eq!(got.fds, ["r1"]);
        assert_eq!(c.stats(), (1, 0, 1, 1));
    }

    #[test]
    fn concurrent_lookups_coalesce() {
        let c = Arc::new(ResultCache::new(8));
        let Lookup::Claimed(_) = c.lookup_or_claim(key(2)) else {
            panic!("claim");
        };
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || match c.lookup_or_claim(key(2)) {
                    Lookup::Wait(f) => f.wait(Duration::from_secs(5)).unwrap().unwrap().fds.clone(),
                    _ => panic!("must coalesce"),
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        c.publish(key(2), Ok(result("shared")));
        for w in waiters {
            assert_eq!(w.join().unwrap(), ["shared"]);
        }
        let (hits, coalesced, misses, _) = c.stats();
        assert_eq!((hits, coalesced, misses), (0, 4, 1));
    }

    #[test]
    fn failure_releases_the_key() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(3)) else {
            panic!("claim");
        };
        c.abort(key(3), "queue full");
        assert_eq!(flight.wait(Duration::from_secs(1)).unwrap().unwrap_err(), "queue full");
        // The key can be claimed again.
        assert!(matches!(c.lookup_or_claim(key(3)), Lookup::Claimed(_)));
    }

    #[test]
    fn wait_times_out_without_publish() {
        let c = ResultCache::new(8);
        let Lookup::Claimed(flight) = c.lookup_or_claim(key(4)) else {
            panic!("claim");
        };
        assert!(flight.wait(Duration::from_millis(30)).is_none());
    }

    #[test]
    fn eviction_is_fifo_and_bounded() {
        let c = ResultCache::new(2);
        for h in 0..5 {
            let Lookup::Claimed(_) = c.lookup_or_claim(key(h)) else { panic!("claim") };
            c.publish(key(h), Ok(result(&h.to_string())));
        }
        let (_, _, _, entries) = c.stats();
        assert_eq!(entries, 2);
        assert!(matches!(c.lookup_or_claim(key(4)), Lookup::Hit(_)), "newest survives");
        assert!(matches!(c.lookup_or_claim(key(0)), Lookup::Claimed(_)), "oldest evicted");
    }

    #[test]
    fn distinct_queries_do_not_share_entries() {
        let approx = CacheKey { dataset_hash: 9, epsilon_bits: Some(0.1f64.to_bits()), max_lhs: None };
        let exact = CacheKey { dataset_hash: 9, epsilon_bits: None, max_lhs: None };
        let limited = CacheKey { dataset_hash: 9, epsilon_bits: None, max_lhs: Some(2) };
        let c = ResultCache::new(8);
        for k in [approx, exact, limited] {
            assert!(matches!(c.lookup_or_claim(k), Lookup::Claimed(_)));
        }
    }
}
