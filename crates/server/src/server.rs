//! The discovery service: accept loop, worker pool, and request routing.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//! accept loop ──► handler thread per connection ──► bounded JobQueue ──► worker pool
//!      │                │  ▲                                               │
//!      │                ▼  │ single-flight wait / level events             ▼
//!   shutdown         ResultCache ◄──────────────────── publish ── tane_core::search
//! ```
//!
//! Handlers never compute: they resolve the dataset, claim or join a cache
//! flight, and wait. Workers own the searches. One handler thread serves a
//! connection for its whole keep-alive lifetime (up to
//! `max_requests_per_conn` requests, closing after `idle_timeout` of
//! silence), and the thread-per-connection spawn is bounded by a
//! connection semaphore — connections over `max_connections` are shed
//! with 503 + `Retry-After`. Overload is likewise shed at the queue
//! (HTTP 429), never absorbed into memory. Shutdown (SIGTERM, SIGINT, or
//! `POST /shutdown`) stops the accept loop, answers each persistent
//! connection's in-flight request with `connection: close`, lets workers
//! finish the jobs they hold, and fails the undrained backlog with 503.
//!
//! ## API versions
//!
//! Every endpoint lives under `/v1/...`; the original unversioned paths
//! remain byte-for-byte compatible aliases that additionally carry
//! `Deprecation: true` and `Sunset` headers ([`LEGACY_SUNSET`]; removal
//! policy in README). Routing normalizes the path once
//! ([`split_version`]) and dispatches both trees through one table; only
//! error *shapes* differ — `/v1` answers errors with the
//! `{"error":{"code","message"}}` envelope, legacy paths keep the flat
//! `{"error": "..."}` body existing clients parse. Failures that happen
//! *before* routing (framing errors, oversized heads, the connection cap)
//! have no version to speak, so they stay in the legacy shape.
//!
//! ## Streaming
//!
//! `POST /v1/discover` with `"stream": true` answers with an NDJSON body
//! in chunked transfer encoding: one object per completed lattice level as
//! the search reaches it, then a `summary` trailer. Ranked requests
//! (`"top_k": K`) interleave `{"event":"topk",...}` heap snapshots after
//! the level lines they improved on; the level lines themselves stay
//! untagged and byte-identical to the exact/approximate stream (grammar in
//! README). The worker publishes
//! levels through a **bounded** channel ([`STREAM_EVENT_DEPTH`]) — a slow
//! client stalls the search rather than buffering it, and a vanished
//! client fails the send, which simply stops the feed while the search
//! runs on to land in the cache. Cache hits and single-flight followers
//! replay the recorded level lines, byte-identical to the live stream.

use std::io::{self, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::cache::{CacheKey, CachedResult, JobResult, Lookup, ResultCache};
use crate::http::{is_timeout, read_request, ChunkedBody, Request, RequestError, Response};
use crate::metrics::Metrics;
use crate::queue::{JobQueue, PushError};
use crate::registry::{DatasetRegistry, RemoveOutcome};
use tane_core::{
    discover_approx_fds_with, discover_fds_with, discover_topk_fds_with, ApproxTaneConfig,
    LevelEvent, RankedFd, Storage, TaneConfig, TaneResult, TopKConfig, TopKEvent,
};
use tane_delta::{DatasetEngine, PatchError};
use tane_relation::csv::{read_csv_from, CsvOptions};
use tane_relation::{Relation, RowPatch, Value};
use tane_util::Json;

/// Set by the SIGTERM/SIGINT handler; polled by every accept loop.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Capacity of the worker→handler level-event channel of one streaming
/// request. Small on purpose: the channel is a hand-off, not a buffer — a
/// client that cannot keep up blocks the worker's `send`, which is the
/// backpressure that keeps a slow reader from ballooning server memory.
const STREAM_EVENT_DEPTH: usize = 8;

/// Installs process signal handlers that request a graceful shutdown.
/// Idempotent; a no-op off Unix. Called by `tane serve`, not by tests.
#[allow(unsafe_code)] // audited: POSIX signal(2) registration below
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            /// POSIX `signal(2)`, linked from libc via std. The handler only
            /// performs an atomic store, which is async-signal-safe.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        // SAFETY: `signal` is the POSIX signal(2) the platform libc
        // already links; passing a valid signal number and the address of
        // an `extern "C" fn(i32)` matches its contract. The handler body
        // is a single atomic store — async-signal-safe, touching no
        // allocator, lock, or libc state.
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads running searches. `0` is allowed (nothing ever
    /// drains — useful for overload tests).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before 429.
    pub queue_capacity: usize,
    /// Maximum request body size (CSV uploads, discover bodies).
    pub max_body_bytes: usize,
    /// Socket write timeout, and the read timeout while *inside* a request
    /// (a client that stalls mid-request is disconnected after this).
    pub read_timeout: Duration,
    /// How long a handler waits for its job before answering 504.
    pub job_timeout: Duration,
    /// Finished results kept in the cache.
    pub cache_capacity: usize,
    /// Concurrent connections served; excess connections are shed with
    /// 503 + `Retry-After` instead of spawning unbounded handler threads.
    pub max_connections: usize,
    /// Requests one keep-alive connection may carry before the server
    /// closes it (a fairness valve against connection squatting).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server disconnects it.
    pub idle_timeout: Duration,
    /// Bytes of spilled partitions one dataset's disk-backed searches may
    /// hold on disk at once, across all of its concurrent searches
    /// (per-dataset, not global). Exceeding it fails the search with
    /// HTTP 507 `disk-quota-exceeded`.
    pub disk_quota_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 64,
            max_body_bytes: 8 << 20,
            read_timeout: Duration::from_secs(10),
            job_timeout: Duration::from_secs(120),
            cache_capacity: 256,
            max_connections: 1024,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(10),
            disk_quota_bytes: crate::registry::DEFAULT_DISK_QUOTA_BYTES,
        }
    }
}

/// One unit of worker work: a claimed cache key plus everything needed to
/// run the search and publish the result.
struct Job {
    key: CacheKey,
    relation: Arc<Relation>,
    mode: DiscoverMode,
    max_lhs: Option<usize>,
    storage: Storage,
    threads: usize,
    /// The dataset's shared disk quota, attached for disk-backed searches
    /// so concurrent spills of the same dataset share one cap.
    quota: Option<Arc<tane_partition::DiskQuota>>,
    /// A streaming handler's level-event channel, when the claiming
    /// request asked to stream. Bounded ([`STREAM_EVENT_DEPTH`]); dropped
    /// receivers turn sends into no-ops rather than errors that stop the
    /// search.
    events: Option<SyncSender<String>>,
    /// The dataset's incremental engine, for patchable uploads. The worker
    /// runs the merge-and-reverify path when `relation` is still the
    /// engine's current generation (checked under the engine lock); after
    /// a mid-queue patch it falls back to a plain search on the snapshot,
    /// so the result stays coherent with the generation the request saw.
    engine: Option<Arc<DatasetEngine>>,
}

/// State shared by every thread of one server.
struct Shared {
    config: ServerConfig,
    registry: DatasetRegistry,
    cache: ResultCache,
    queue: JobQueue<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }

    /// Claims a connection slot, or reports the cap reached. The gauge in
    /// `metrics.connections_active` *is* the semaphore count; handlers
    /// release by decrementing it when they finish.
    fn try_admit_connection(&self) -> bool {
        let active = &self.metrics.connections_active;
        let mut current = active.load(Ordering::Relaxed);
        loop {
            if current >= self.config.max_connections {
                return false;
            }
            match active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    fn release_connection(&self) {
        self.metrics
            .connections_active
            .fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server; dropping it does NOT stop it — call [`Server::shutdown`]
/// then [`Server::wait`], or let a signal / `POST /shutdown` end it.
pub struct Server {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop and
    /// worker pool.
    pub fn start(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: DatasetRegistry::with_disk_quota(config.disk_quota_bytes),
            cache: ResultCache::new(config.cache_capacity),
            queue: JobQueue::new(config.queue_capacity),
            metrics: Metrics::new(config.workers),
            shutdown: AtomicBool::new(false),
            config,
        });

        let mut workers = Vec::new();
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tane-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tane-accept".into())
                .spawn(move || accept_loop(&listener, &shared, workers))?
        };

        Ok(Server {
            local_addr,
            shared,
            accept_thread,
        })
    }

    /// The bound address (resolves `:0` ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server has fully stopped: accept loop ended,
    /// workers drained and joined.
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !shared.try_admit_connection() {
                    shed_connection(shared, stream);
                    continue;
                }
                shared
                    .metrics
                    .connections_total
                    .fetch_add(1, Ordering::Relaxed);
                let handler_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("tane-handler".into())
                    .spawn(move || {
                        handle_connection(&handler_shared, stream);
                        handler_shared.release_connection();
                    });
                if spawned.is_err() {
                    // The closure (and its permit release) never ran; the
                    // stream was dropped with it. Give the slot back here.
                    shared.release_connection();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Drain: fail the backlog so its waiters unblock, let workers finish
    // the jobs they already hold, then join them.
    for job in shared.queue.close() {
        shared.cache.abort(job.key, "server shutting down");
    }
    for w in workers {
        let _ = w.join();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        let key = job.key;
        let result = run_job(shared, job);
        match &result {
            Ok(_) => shared
                .metrics
                .jobs_completed
                .fetch_add(1, Ordering::Relaxed),
            Err(_) => shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        shared.cache.publish(key, result);
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs one discovery job and shapes the outcome for the cache.
///
/// The stream observers do double duty: every emitted line — legacy level
/// lines and, in ranked mode, the interleaved `{"event":"topk",...}`
/// objects — is recorded for the cache (so later streams replay
/// byte-identical output), and — when the claiming request is streaming —
/// also sent through the bounded events channel. A failed send means the
/// streaming client went away; the search keeps running so the result
/// still lands in the cache.
fn run_job(shared: &Shared, job: Job) -> JobResult {
    let base = TaneConfig {
        storage: job.storage,
        disk_quota: job.quota,
        max_lhs: job.max_lhs,
        threads: job.threads,
        ..TaneConfig::default()
    };
    let names = job.relation.schema().names();
    // Two observers feed one recorded line sequence, so the interior
    // mutability lives here: both closures borrow the record and the sink
    // for the duration of one call, never concurrently (the search invokes
    // its observers serially, on the one search thread).
    let levels = std::cell::RefCell::new(Vec::<String>::new());
    let sink = std::cell::RefCell::new(job.events);
    let emit = |line: String| {
        let mut sink = sink.borrow_mut();
        if let Some(tx) = sink.as_ref() {
            if tx.send(line.clone()).is_err() {
                *sink = None;
            }
        }
        levels.borrow_mut().push(line);
    };
    let mut on_level = |ev: LevelEvent| emit(render_level_event(&ev, names));
    let outcome = match job.mode {
        DiscoverMode::Approx(epsilon) => {
            let config = ApproxTaneConfig {
                base,
                ..ApproxTaneConfig::new(epsilon)
            };
            job.engine
                .as_ref()
                .and_then(|e| e.discover_approx_for(&job.relation, &config, &mut on_level))
                .unwrap_or_else(|| discover_approx_fds_with(&job.relation, &config, &mut on_level))
        }
        DiscoverMode::Exact => job
            .engine
            .as_ref()
            .and_then(|e| e.discover_exact_for(&job.relation, &base, &mut on_level))
            .unwrap_or_else(|| discover_fds_with(&job.relation, &base, &mut on_level)),
        // Ranked search runs on the request's snapshot directly — the
        // incremental engine has no ranked re-verify path, and the result
        // is cached under the snapshot's content hash either way.
        DiscoverMode::TopK(k) => {
            let config = TopKConfig { base, k };
            discover_topk_fds_with(&job.relation, &config, &mut on_level, |ev: TopKEvent| {
                emit(render_topk_event(&ev, names))
            })
        }
    };
    match outcome {
        Ok(result) => {
            shared.metrics.record_search(&result.stats);
            if matches!(job.mode, DiscoverMode::TopK(_)) {
                shared.metrics.record_topk(&result.stats);
            }
            Ok(Arc::new(shape_result(
                &job.relation,
                &result,
                levels.into_inner(),
            )))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// One NDJSON stream object: the minimal dependencies that became final at
/// `ev.level`, with the level's timings. Rendered by the worker exactly
/// once per level; live streams and cache replays both emit these bytes.
fn render_level_event(ev: &LevelEvent, names: &[String]) -> String {
    Json::obj([
        ("level", Json::Num(ev.level as f64)),
        (
            "fds",
            Json::str_array(ev.new_minimal_fds.iter().map(|fd| fd.display_with(names))),
        ),
        ("level_secs", Json::Num(ev.level_time.as_secs_f64())),
        ("partitions_bytes", Json::Num(ev.partitions_bytes as f64)),
    ])
    .render()
}

/// One ranked heap entry as response JSON: the rendered dependency plus
/// its score, in rows and as the `g3` fraction.
fn ranked_entry(entry: &RankedFd, names: &[String]) -> Json {
    Json::obj([
        ("fd", Json::Str(entry.fd.display_with(names))),
        ("g3", Json::Num(entry.g3())),
        ("g3_rows", Json::Num(entry.g3_rows as f64)),
    ])
}

/// One ranked NDJSON stream object, emitted after the level line of every
/// level on which the heap improved. Tagged with the `"event"`
/// discriminator so stream consumers can dispatch without sniffing keys —
/// legacy level lines stay untagged and byte-identical (see the stream
/// grammar in README).
fn render_topk_event(ev: &TopKEvent, names: &[String]) -> String {
    Json::obj([
        ("event", Json::Str("topk".to_string())),
        ("level", Json::Num(ev.level as f64)),
        (
            "heap",
            Json::Arr(ev.heap.iter().map(|e| ranked_entry(e, names)).collect()),
        ),
    ])
    .render()
}

/// The final NDJSON stream object. Deliberately *without* a `cached`
/// field: a replayed stream must be byte-identical to the live one.
fn render_trailer(dataset: &str, result: &CachedResult) -> String {
    let mut members = vec![
        ("dataset", Json::Str(dataset.to_string())),
        ("count", Json::Num(result.fds.len() as f64)),
        ("keys", Json::str_array(result.keys.iter().cloned())),
    ];
    if let Some(ranked) = &result.ranked {
        members.push(("ranked", ranked.clone()));
    }
    members.push(("stats", result.stats.clone()));
    members.push(("compute_secs", Json::Num(result.compute_secs)));
    Json::obj([("summary", Json::obj(members))]).render()
}

/// Renders a `TaneResult` into the cached, response-ready form. The `fds`
/// strings use `Fd::display_with`, so they are byte-identical to the lines
/// `tane discover` prints for the same data and parameters. `levels` is
/// the observer's per-level NDJSON record, kept for stream replay.
fn shape_result(relation: &Relation, result: &TaneResult, levels: Vec<String>) -> CachedResult {
    let names = relation.schema().names();
    let s = &result.stats;
    let mut stat_members = vec![
        ("levels", Json::Num(s.levels as f64)),
        ("sets_total", Json::Num(s.sets_total as f64)),
        ("sets_max_level", Json::Num(s.sets_max_level as f64)),
        ("validity_tests", Json::Num(s.validity_tests as f64)),
        ("keys_found", Json::Num(s.keys_found as f64)),
        ("products", Json::Num(s.products as f64)),
        (
            "partitions_supplied",
            Json::Num(s.partitions_supplied as f64),
        ),
        (
            "g3_exact_computations",
            Json::Num(s.g3_exact_computations as f64),
        ),
        (
            "g3_decided_by_bounds",
            Json::Num(s.g3_decided_by_bounds as f64),
        ),
        ("disk_reads", Json::Num(s.disk_reads as f64)),
        ("disk_writes", Json::Num(s.disk_writes as f64)),
        ("disk_bytes_read", Json::Num(s.disk_bytes_read as f64)),
        ("disk_bytes_written", Json::Num(s.disk_bytes_written as f64)),
        ("store_evictions", Json::Num(s.store_evictions as f64)),
        ("store_pins", Json::Num(s.store_pins as f64)),
        ("oversized_resident", Json::Num(s.oversized_resident as f64)),
        ("parallel_workers", Json::Num(s.parallel_workers as f64)),
        ("parallel_grains", Json::Num(s.parallel_grains as f64)),
        ("worker_steals", Json::Num(s.worker_steals as f64)),
        ("worker_parks", Json::Num(s.worker_parks as f64)),
        ("worker_spin_secs", Json::Num(s.worker_spin.as_secs_f64())),
        ("worker_busy_secs", Json::Num(s.worker_busy.as_secs_f64())),
        ("fetch_stall_secs", Json::Num(s.fetch_stall.as_secs_f64())),
        (
            "level_secs",
            Json::Arr(
                s.level_times
                    .iter()
                    .map(|t| Json::Num(t.as_secs_f64()))
                    .collect(),
            ),
        ),
        ("elapsed_secs", Json::Num(s.elapsed.as_secs_f64())),
    ];
    // Ranked runs only: the pruning counters and the final heap. Gated on
    // the mode so exact/approximate responses — /v1 and legacy alike —
    // keep their historical bytes.
    if result.ranked.is_some() {
        stat_members.push(("topk_bound_pruned", Json::Num(s.topk_bound_pruned as f64)));
        stat_members.push(("topk_dominated", Json::Num(s.topk_dominated as f64)));
        stat_members.push(("topk_improvements", Json::Num(s.topk_improvements as f64)));
        stat_members.push((
            "topk_early_exit_level",
            match s.topk_early_exit_level {
                Some(l) => Json::Num(l as f64),
                None => Json::Null,
            },
        ));
    }
    let stats = Json::obj(stat_members);
    CachedResult {
        fds: result.fds.iter().map(|fd| fd.display_with(names)).collect(),
        keys: result
            .keys
            .iter()
            .map(|k| k.display_with(names).to_string())
            .collect(),
        stats,
        compute_secs: s.elapsed.as_secs_f64(),
        levels,
        ranked: result
            .ranked
            .as_ref()
            .map(|heap| Json::Arr(heap.iter().map(|e| ranked_entry(e, names)).collect())),
    }
}

/// Refuses a connection over the cap: one quick 503 with `Retry-After`,
/// written from a short-lived thread so a slow peer cannot stall the
/// accept loop, then the socket closes. Pre-routing, hence legacy-shaped.
fn shed_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared
        .metrics
        .connections_shed
        .fetch_add(1, Ordering::Relaxed);
    let _ = std::thread::Builder::new()
        .name("tane-shed".into())
        .spawn(move || {
            let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
            let _ = Response::error(503, "connection limit reached")
                .with_header("retry-after", "1")
                .write_to(&mut stream, false);
        });
}

/// Serves one connection for its whole keep-alive lifetime.
///
/// The `BufReader` persists across requests, so bytes of a pipelined
/// follow-up that arrived with an earlier read are served without touching
/// the socket. The connection closes when the client asks (`Connection:
/// close`), idles past `idle_timeout`, exhausts `max_requests_per_conn`,
/// commits a framing error (answered, then closed — the stream position is
/// no longer trustworthy, and reusing it is exactly the smuggling desync
/// the parser exists to prevent), aborts a chunked stream mid-body, or
/// when the server starts shutting down (drain: the in-flight request is
/// still answered, with `connection: close`).
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut served: u64 = 0;
    loop {
        let received = Instant::now();
        let (action, keep_alive) = match read_request(&mut reader, shared.config.max_body_bytes) {
            Ok(request) => {
                shared
                    .metrics
                    .requests_total
                    .fetch_add(1, Ordering::Relaxed);
                if served > 0 {
                    shared
                        .metrics
                        .connections_reused
                        .fetch_add(1, Ordering::Relaxed);
                }
                served += 1;
                let action = route(shared, &request);
                let keep = request.keep_alive
                    && served < shared.config.max_requests_per_conn as u64
                    && !shared.shutting_down();
                (action, keep)
            }
            // The quiet ends of a keep-alive connection: the client hung
            // up between requests, or sat idle past the timeout.
            Err(RequestError::Closed) | Err(RequestError::Idle) => break,
            // Framing errors are answered (legacy-shaped: they precede
            // routing, so there is no API version to speak), then the
            // connection closes.
            Err(RequestError::TooLarge) => (
                Action::Respond(Response::error(413, "request too large")),
                false,
            ),
            Err(RequestError::Bad(msg)) => (Action::Respond(Response::error(400, &msg)), false),
            Err(RequestError::NotImplemented(msg)) => {
                (Action::Respond(Response::error(501, &msg)), false)
            }
            Err(RequestError::Io(e)) if is_timeout(&e) => {
                // Stalled *mid*-request (Idle covers the between-requests
                // case): tell the client before hanging up.
                (
                    Action::Respond(Response::error(408, "timed out reading request")),
                    false,
                )
            }
            Err(RequestError::Io(_)) => break, // client went away; nothing to say
        };
        let wrote = match action {
            Action::Respond(response) => response.write_to(&mut stream, keep_alive).is_ok(),
            Action::Stream(plan) => {
                stream_discover(shared, plan, &mut stream, keep_alive, received)
            }
        };
        if !wrote || !keep_alive {
            break;
        }
    }
    shared.metrics.record_connection_end(served);
}

/// What one routed request asks the connection handler to do: write a
/// complete response, or take over the socket for a chunked stream.
enum Action {
    Respond(Response),
    Stream(StreamPlan),
}

/// A streaming `/v1/discover`, resolved up to (but not including) the
/// first byte on the wire.
struct StreamPlan {
    dataset: String,
    source: StreamSource,
}

enum StreamSource {
    /// A cache hit: replay the recorded level lines and trailer.
    Replay(Arc<CachedResult>),
    /// Another request's flight is computing this key: wait for it, then
    /// replay. Resolved before the response head so failures still get
    /// real status codes.
    Follow(Arc<crate::cache::Flight>),
    /// This request claimed the key: levels arrive live over the bounded
    /// channel, the trailer comes from the flight.
    Live {
        rx: Receiver<String>,
        flight: Arc<crate::cache::Flight>,
    },
}

/// [`StreamSource`] after follower resolution: what `pump_stream` can
/// actually pump. `Follow` is gone at the type level, so the pump has no
/// "can't happen" arm to panic in.
enum ResolvedSource {
    Replay(Arc<CachedResult>),
    Live {
        rx: Receiver<String>,
        flight: Arc<crate::cache::Flight>,
    },
}

/// A routed failure, shaped per API version at the edge: `/v1` gets the
/// `{"error":{"code","message"}}` envelope, legacy paths get the flat
/// `{"error": message}` body with exactly the historical message strings.
struct ApiError {
    status: u16,
    /// Stable machine-matchable slug — part of the `/v1` contract.
    code: &'static str,
    message: String,
    retry_after: Option<&'static str>,
}

impl ApiError {
    fn new(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code,
            message: message.into(),
            retry_after: None,
        }
    }

    fn with_retry_after(mut self, seconds: &'static str) -> ApiError {
        self.retry_after = Some(seconds);
        self
    }

    fn job_timeout() -> ApiError {
        ApiError::new(504, "job-timeout", "job did not finish in time")
    }

    fn into_response(self, versioned: bool) -> Response {
        let response = if versioned {
            Response::error_envelope(self.status, self.code, &self.message)
        } else {
            Response::error(self.status, &self.message)
        };
        match self.retry_after {
            Some(seconds) => response.with_header("retry-after", seconds),
            None => response,
        }
    }
}

/// Classifies a flight failure message into status + slug. The message is
/// the abort reason recorded by whichever handler failed to enqueue, so
/// waiters see the same text the claimer was answered with.
fn flight_error(msg: String) -> ApiError {
    if msg.contains("shutting down") {
        ApiError::new(503, "shutting-down", msg)
    } else if msg.contains("queue full") {
        ApiError::new(503, "queue-full", msg)
    } else if msg.contains("disk quota exceeded") {
        // `StoreError::QuotaExceeded` through `TaneError::Store`: the
        // dataset's spill cap, not a server fault — RFC 4918's 507.
        ApiError::new(507, "disk-quota-exceeded", msg)
    } else if msg.contains("corrupt partition record") {
        // `StoreError::Corrupt`: a damaged or truncated segment record.
        // Surfaced as a plain 500 with its own slug; the server keeps
        // serving (the store never panics on corruption).
        ApiError::new(500, "store-corrupt", msg)
    } else {
        ApiError::new(500, "search-failed", msg)
    }
}

/// The one path-normalization step: `/v1/x` → (`/x`, versioned); anything
/// else — including a bare `/v1` and non-prefix lookalikes like `/v1x` —
/// is the legacy tree, verbatim.
fn split_version(path: &str) -> (&str, bool) {
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (path, false),
    }
}

/// When the legacy unversioned routes stop being served (RFC 8594
/// `Sunset`). The removal policy lives in README: announced alongside
/// `Deprecation: true`, honored for at least two minor releases, then the
/// unversioned tree answers 404.
const LEGACY_SUNSET: &str = "Sun, 01 Aug 2027 00:00:00 GMT";

fn route(shared: &Shared, request: &Request) -> Action {
    let (path, versioned) = split_version(&request.path);
    let action = dispatch(shared, request, path, versioned)
        .unwrap_or_else(|e| Action::Respond(e.into_response(versioned)));
    if versioned {
        return action;
    }
    match action {
        // Every legacy-path response advertises the migration and its
        // deadline; bodies stay byte-identical, clients notice at their
        // leisure.
        Action::Respond(response) => Action::Respond(
            response
                .with_header("deprecation", "true")
                .with_header("sunset", LEGACY_SUNSET),
        ),
        // Unreachable today (`stream` is rejected on legacy /discover),
        // kept total rather than panicking on a future slip.
        stream => stream,
    }
}

/// The shared dispatch table. `path` is already version-stripped;
/// `versioned` gates the endpoints and behaviors that only exist under
/// `/v1` (dataset detail/delete, streaming, the content-type check).
fn dispatch(
    shared: &Shared,
    request: &Request,
    path: &str,
    versioned: bool,
) -> Result<Action, ApiError> {
    let respond = |r: Response| Ok(Action::Respond(r));
    match (request.method.as_str(), path) {
        ("GET", "/health") => respond(Response::json(
            200,
            &Json::obj([(
                "status",
                Json::Str(
                    if shared.shutting_down() {
                        "shutting down"
                    } else {
                        "ok"
                    }
                    .into(),
                ),
            )]),
        )),
        ("GET", "/metrics") => {
            let queue = (shared.queue.depth(), shared.queue.capacity());
            respond(Response::json(
                200,
                &shared.metrics.render(queue, shared.cache.stats()),
            ))
        }
        ("GET", "/datasets") => respond(list_datasets(shared)),
        ("POST", "/discover") => discover(shared, request, versioned),
        ("POST", p) if p.strip_prefix("/datasets/").is_some_and(valid_name) => {
            upload_dataset(shared, &p["/datasets/".len()..], &request.body).map(Action::Respond)
        }
        ("GET", p) if versioned && p.strip_prefix("/datasets/").is_some_and(valid_name) => {
            dataset_detail(shared, &p["/datasets/".len()..]).map(Action::Respond)
        }
        ("DELETE", p) if versioned && p.strip_prefix("/datasets/").is_some_and(valid_name) => {
            remove_dataset(shared, &p["/datasets/".len()..]).map(Action::Respond)
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            respond(Response::json(
                200,
                &Json::obj([("status", Json::Str("shutting down".into()))]),
            ))
        }
        ("PATCH", p) if versioned => match p
            .strip_prefix("/datasets/")
            .and_then(|rest| rest.strip_suffix("/rows"))
        {
            Some(name) if valid_name(name) => {
                patch_rows(shared, name, &request.body).map(Action::Respond)
            }
            _ => Err(ApiError::new(404, "unknown-endpoint", "no such endpoint")),
        },
        ("GET" | "POST" | "PATCH", _) => {
            Err(ApiError::new(404, "unknown-endpoint", "no such endpoint"))
        }
        // Unknown verbs get the RFC-mandated Allow header so clients learn
        // what the resource actually supports.
        _ => respond(
            ApiError::new(405, "method-not-allowed", "method not allowed")
                .into_response(versioned)
                .with_header("allow", allowed_methods(path, versioned)),
        ),
    }
}

/// What `Allow` should advertise for a 405 on `path`. Conservative: names
/// the verbs the dispatch table actually routes for that resource.
fn allowed_methods(path: &str, versioned: bool) -> &'static str {
    match path {
        "/health" | "/metrics" | "/datasets" => "GET",
        "/discover" | "/shutdown" => "POST",
        p if versioned
            && p.strip_prefix("/datasets/")
                .and_then(|rest| rest.strip_suffix("/rows"))
                .is_some_and(valid_name) =>
        {
            "PATCH"
        }
        p if p.strip_prefix("/datasets/").is_some_and(valid_name) => {
            if versioned {
                "GET, POST, DELETE"
            } else {
                "POST"
            }
        }
        _ => "GET, POST, PATCH, DELETE",
    }
}

/// Upload names: non-empty, path-safe.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

fn unknown_dataset(name: &str) -> ApiError {
    ApiError::new(404, "unknown-dataset", format!("unknown dataset `{name}`"))
}

fn list_datasets(shared: &Shared) -> Response {
    let rows: Vec<Json> = shared
        .registry
        .list()
        .into_iter()
        .map(|(name, shape)| match shape {
            Some((rows, attrs)) => Json::obj([
                ("name", Json::Str(name)),
                ("rows", Json::Num(rows as f64)),
                ("attrs", Json::Num(attrs as f64)),
            ]),
            None => Json::obj([("name", Json::Str(name))]),
        })
        .collect();
    Response::json(200, &Json::obj([("datasets", Json::Arr(rows))]))
}

/// `GET /v1/datasets/{name}`: the dataset's schema and identity. Resolving
/// generates a built-in on first touch, exactly like discovery would.
fn dataset_detail(shared: &Shared, name: &str) -> Result<Response, ApiError> {
    let Some(relation) = shared.registry.get(name) else {
        return Err(unknown_dataset(name));
    };
    Ok(Response::json(
        200,
        &Json::obj([
            ("dataset", Json::Str(name.to_string())),
            ("rows", Json::Num(relation.num_rows() as f64)),
            ("attrs", Json::Num(relation.num_attrs() as f64)),
            (
                "attributes",
                Json::str_array(relation.schema().names().iter().cloned()),
            ),
            (
                "content_hash",
                Json::Str(format!("{:016x}", relation.content_hash())),
            ),
            ("builtin", Json::Bool(DatasetRegistry::is_builtin(name))),
        ]),
    ))
}

/// `DELETE /v1/datasets/{name}`: unregisters an upload. The built-in
/// benchmark corpus is part of the service, not user state — deleting it
/// is refused with 403. Cached results for the deleted content are kept:
/// they are keyed by content hash, so they can only ever answer a
/// re-upload of the identical data.
fn remove_dataset(shared: &Shared, name: &str) -> Result<Response, ApiError> {
    match shared.registry.remove(name) {
        RemoveOutcome::Removed => Ok(Response::json(
            200,
            &Json::obj([
                ("dataset", Json::Str(name.to_string())),
                ("removed", Json::Bool(true)),
            ]),
        )),
        RemoveOutcome::Builtin => Err(ApiError::new(
            403,
            "builtin-dataset",
            format!("dataset `{name}` is built-in and cannot be removed"),
        )),
        RemoveOutcome::NotFound => Err(unknown_dataset(name)),
    }
}

fn upload_dataset(shared: &Shared, name: &str, body: &[u8]) -> Result<Response, ApiError> {
    let relation = match read_csv_from(body, &CsvOptions::default()) {
        Ok(r) => r,
        Err(e) => return Err(ApiError::new(400, "invalid-body", format!("bad CSV: {e}"))),
    };
    let arc = shared.registry.insert(name, relation);
    Ok(Response::json(
        200,
        &Json::obj([
            ("dataset", Json::Str(name.to_string())),
            ("rows", Json::Num(arc.num_rows() as f64)),
            ("attrs", Json::Num(arc.num_attrs() as f64)),
            (
                "content_hash",
                Json::Str(format!("{:016x}", arc.content_hash())),
            ),
        ]),
    ))
}

/// `PATCH /v1/datasets/{name}/rows`: apply a row delta to an uploaded
/// dataset's incremental engine, then evict the stale generation's cached
/// results so later discoveries re-verify against the merged view.
fn patch_rows(shared: &Shared, name: &str, body: &[u8]) -> Result<Response, ApiError> {
    if DatasetRegistry::is_builtin(name) {
        return Err(ApiError::new(
            403,
            "builtin-dataset",
            format!("dataset `{name}` is built-in and cannot be patched"),
        ));
    }
    let engine = shared
        .registry
        .engine(name)
        .ok_or_else(|| unknown_dataset(name))?;
    let patch = parse_patch(body).map_err(|msg| ApiError::new(400, "invalid-body", msg))?;
    match engine.patch(&patch) {
        Ok(outcome) => {
            if outcome.new_hash != outcome.old_hash {
                let evicted = shared.cache.evict_dataset(outcome.old_hash);
                shared.cache.mark_fresh(outcome.new_hash);
                let _ = evicted;
            }
            Ok(Response::json(
                200,
                &Json::obj([
                    ("dataset", Json::Str(name.to_string())),
                    ("generation", Json::Num(outcome.generation as f64)),
                    ("rows", Json::Num(outcome.rows as f64)),
                    ("appended", Json::Num(outcome.appended as f64)),
                    ("deleted", Json::Num(outcome.deleted as f64)),
                    (
                        "content_hash",
                        Json::Str(format!("{:016x}", outcome.new_hash)),
                    ),
                ]),
            ))
        }
        Err(PatchError::TooLarge { rows, cap }) => Err(ApiError::new(
            413,
            "patch-too-large",
            format!("patch touches {rows} rows, cap is {cap}"),
        )),
        Err(PatchError::Relation(e)) => Err(ApiError::new(400, "invalid-patch", e.to_string())),
    }
}

/// Parses a PATCH body: `{"append": [["v", ...], ...], "delete": [i, ...]}`,
/// either key optional but at least one required.
fn parse_patch(body: &[u8]) -> Result<RowPatch, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Json::Obj(members) = &json else {
        return Err("body must be a JSON object".into());
    };
    let mut patch = RowPatch::default();
    for (key, value) in members {
        match key.as_str() {
            "append" => {
                let rows = value
                    .as_array()
                    .ok_or("`append` must be an array of rows")?;
                for row in rows {
                    let cells = row.as_array().ok_or("each appended row must be an array")?;
                    let mut parsed = Vec::with_capacity(cells.len());
                    for cell in cells {
                        let s = cell.as_str().ok_or("appended cells must be strings")?;
                        parsed.push(Value::parse(s));
                    }
                    patch.appends.push(parsed);
                }
            }
            "delete" => {
                let indices = value
                    .as_array()
                    .ok_or("`delete` must be an array of row indices")?;
                for idx in indices {
                    let i = idx
                        .as_usize()
                        .ok_or("`delete` entries must be non-negative integers")?;
                    patch.deletes.push(i);
                }
            }
            other => return Err(format!("unknown field `{other}`")),
        }
    }
    if patch.appends.is_empty() && patch.deletes.is_empty() {
        return Err("patch must append or delete at least one row".to_string());
    }
    Ok(patch)
}

/// The `/discover` body as a typed request — the single point where raw
/// JSON is validated. Everything downstream (routing, the cache key, the
/// worker's job) consumes this struct; adding a request field means adding
/// it to [`DISCOVER_FIELDS`] and a typed accessor here, nowhere else.
#[derive(Debug)]
struct DiscoverRequest {
    dataset: String,
    mode: DiscoverMode,
    max_lhs: Option<usize>,
    storage: Storage,
    threads: usize,
    stream: bool,
}

/// Which search the request asked for. `epsilon` and `top_k` are mutually
/// exclusive in the body: ranked search orders candidates by `g3` instead
/// of thresholding them.
#[derive(Debug, Clone, Copy, PartialEq)]
enum DiscoverMode {
    Exact,
    Approx(f64),
    TopK(usize),
}

/// A rejected body, carrying the `/v1` error slug. Legacy responses render
/// only the message, so the historical flat-error bytes are unchanged.
#[derive(Debug)]
struct BodyError {
    code: &'static str,
    message: String,
}

impl BodyError {
    fn invalid(message: impl Into<String>) -> BodyError {
        BodyError {
            code: "invalid-body",
            message: message.into(),
        }
    }

    /// Fields the contract does not know get their own slug so clients can
    /// machine-match typos against the documented field list.
    fn unknown_field(name: &str) -> BodyError {
        BodyError {
            code: "unknown_field",
            message: format!("unknown field `{name}`"),
        }
    }
}

/// Every field the `/discover` contract knows, with whether it exists on
/// the legacy unversioned route. Legacy request handling is frozen:
/// `stream` and `top_k` are `/v1`-only, so on `/discover` they stay
/// unknown fields and the legacy behavior is byte-for-byte what it was.
const DISCOVER_FIELDS: &[(&str, bool)] = &[
    ("dataset", true),
    ("epsilon", true),
    ("max_lhs", true),
    ("storage", true),
    ("cache_mb", true),
    ("threads", true),
    ("stream", false),
    ("top_k", false),
];

/// Search worker threads when a request does not say: all available cores.
fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

fn parse_discover(body: &[u8], versioned: bool) -> Result<DiscoverRequest, BodyError> {
    let text = std::str::from_utf8(body).map_err(|_| BodyError::invalid("body is not UTF-8"))?;
    let doc = Json::parse(text).map_err(|e| BodyError::invalid(format!("bad JSON: {e}")))?;
    let Json::Obj(members) = &doc else {
        return Err(BodyError::invalid("body must be a JSON object"));
    };
    for (key, _) in members {
        let known = DISCOVER_FIELDS
            .iter()
            .any(|&(name, on_legacy)| name == key && (versioned || on_legacy));
        if !known {
            return Err(BodyError::unknown_field(key));
        }
    }
    let dataset = doc
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or_else(|| BodyError::invalid("missing required field `dataset`"))?
        .to_string();
    let epsilon = match doc.get("epsilon") {
        None => None,
        Some(v) => {
            let e = v
                .as_f64()
                .ok_or_else(|| BodyError::invalid("`epsilon` must be a number"))?;
            if !(0.0..=1.0).contains(&e) {
                return Err(BodyError::invalid(format!(
                    "`epsilon` must be in [0,1], got {e}"
                )));
            }
            Some(e)
        }
    };
    let top_k = match doc.get("top_k") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| BodyError::invalid("`top_k` must be a non-negative integer"))?,
        ),
    };
    let mode = match (epsilon, top_k) {
        (Some(_), Some(_)) => {
            return Err(BodyError::invalid(
                "`epsilon` and `top_k` are mutually exclusive",
            ))
        }
        (Some(e), None) if e > 0.0 => DiscoverMode::Approx(e),
        (_, Some(k)) => DiscoverMode::TopK(k),
        _ => DiscoverMode::Exact,
    };
    let max_lhs = match doc.get("max_lhs") {
        None => None,
        Some(v) => Some(
            v.as_usize()
                .ok_or_else(|| BodyError::invalid("`max_lhs` must be a non-negative integer"))?,
        ),
    };
    let storage = match doc.get("storage").map(|v| v.as_str()) {
        None | Some(Some("memory")) => Storage::Memory,
        Some(Some("disk")) => {
            let mb = match doc.get("cache_mb") {
                None => 64,
                Some(v) => v.as_usize().ok_or_else(|| {
                    BodyError::invalid("`cache_mb` must be a non-negative integer")
                })?,
            };
            Storage::Disk {
                cache_bytes: mb << 20,
            }
        }
        Some(Some(other)) => {
            return Err(BodyError::invalid(format!(
                "unknown storage `{other}` (memory | disk)"
            )))
        }
        Some(None) => return Err(BodyError::invalid("`storage` must be a string")),
    };
    if doc.get("cache_mb").is_some() && storage == Storage::Memory {
        return Err(BodyError::invalid(
            "`cache_mb` only applies to `storage: \"disk\"`",
        ));
    }
    // Default to every available core: the search runtime is deterministic
    // in the worker count, so parallelism is free to switch on. Explicit
    // `threads: 1` remains the paper-faithful serial run.
    let threads = match doc.get("threads") {
        None => default_threads(),
        Some(v) => {
            let t = v
                .as_usize()
                .ok_or_else(|| BodyError::invalid("`threads` must be a positive integer"))?;
            if t == 0 {
                return Err(BodyError::invalid("`threads` must be at least 1"));
            }
            t
        }
    };
    let stream = match doc.get("stream") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| BodyError::invalid("`stream` must be a boolean"))?,
    };
    Ok(DiscoverRequest {
        dataset,
        mode,
        max_lhs,
        storage,
        threads,
        stream,
    })
}

fn discover(shared: &Shared, request: &Request, versioned: bool) -> Result<Action, ApiError> {
    if versioned {
        if let Some(media) = request.content_type.as_deref() {
            if media != "application/json" {
                return Err(ApiError::new(
                    415,
                    "unsupported-media-type",
                    format!("unsupported content-type `{media}`; use application/json"),
                ));
            }
        }
    }
    let spec = parse_discover(&request.body, versioned)
        .map_err(|e| ApiError::new(400, e.code, e.message))?;
    if shared.shutting_down() {
        return Err(ApiError::new(503, "shutting-down", "server shutting down"));
    }
    let Some(relation) = shared.registry.get(&spec.dataset) else {
        return Err(unknown_dataset(&spec.dataset));
    };
    // The key drops the knobs that cannot change the answer (storage,
    // threads): a disk-backed query is answered by a cached in-memory run
    // of the same search, and vice versa.
    let key = CacheKey {
        dataset_hash: relation.content_hash(),
        epsilon_bits: match spec.mode {
            DiscoverMode::Approx(e) => Some(e.to_bits()),
            _ => None,
        },
        max_lhs: spec.max_lhs,
        top_k: match spec.mode {
            DiscoverMode::TopK(k) => Some(k),
            _ => None,
        },
    };

    match shared.cache.lookup_or_claim(key) {
        Lookup::Hit(result) => {
            if spec.stream {
                Ok(Action::Stream(StreamPlan {
                    dataset: spec.dataset,
                    source: StreamSource::Replay(result),
                }))
            } else {
                Ok(Action::Respond(respond_discover(
                    &spec.dataset,
                    &result,
                    true,
                )))
            }
        }
        Lookup::Wait(flight) => {
            if spec.stream {
                Ok(Action::Stream(StreamPlan {
                    dataset: spec.dataset,
                    source: StreamSource::Follow(flight),
                }))
            } else {
                wait_and_respond(shared, &spec.dataset, &flight, true)
            }
        }
        Lookup::Claimed(flight) => {
            let (events, rx) = if spec.stream {
                let (tx, rx) = sync_channel(STREAM_EVENT_DEPTH);
                (Some(tx), Some(rx))
            } else {
                (None, None)
            };
            let quota = match spec.storage {
                Storage::Disk { .. } => Some(shared.registry.disk_quota(&spec.dataset)),
                Storage::Memory => None,
            };
            let job = Job {
                key,
                engine: shared.registry.engine(&spec.dataset),
                relation,
                mode: spec.mode,
                max_lhs: spec.max_lhs,
                storage: spec.storage,
                threads: spec.threads,
                quota,
                events,
            };
            if let Err((job, e)) = shared.queue.push(job) {
                let err = match e {
                    PushError::Full => {
                        ApiError::new(429, "queue-full", "job queue full").with_retry_after("1")
                    }
                    PushError::Closed => {
                        ApiError::new(503, "shutting-down", "server shutting down")
                    }
                };
                shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                shared.cache.abort(job.key, &err.message);
                return Err(err);
            }
            match rx {
                Some(rx) => Ok(Action::Stream(StreamPlan {
                    dataset: spec.dataset,
                    source: StreamSource::Live { rx, flight },
                })),
                None => wait_and_respond(shared, &spec.dataset, &flight, false),
            }
        }
    }
}

fn wait_and_respond(
    shared: &Shared,
    dataset: &str,
    flight: &crate::cache::Flight,
    cached: bool,
) -> Result<Action, ApiError> {
    match flight.wait(shared.config.job_timeout) {
        Some(Ok(result)) => Ok(Action::Respond(respond_discover(dataset, &result, cached))),
        Some(Err(msg)) => Err(flight_error(msg)),
        None => Err(ApiError::job_timeout()),
    }
}

fn respond_discover(dataset: &str, result: &CachedResult, cached: bool) -> Response {
    let mut members = vec![
        ("dataset", Json::Str(dataset.to_string())),
        ("count", Json::Num(result.fds.len() as f64)),
        ("fds", Json::str_array(result.fds.iter().cloned())),
        ("keys", Json::str_array(result.keys.iter().cloned())),
    ];
    if let Some(ranked) = &result.ranked {
        members.push(("ranked", ranked.clone()));
    }
    members.push(("stats", result.stats.clone()));
    members.push(("cached", Json::Bool(cached)));
    members.push(("compute_secs", Json::Num(result.compute_secs)));
    Response::json(200, &Json::obj(members))
}

/// Per-stream tallies, folded into [`Metrics`] however the stream ends.
#[derive(Default)]
struct StreamTally {
    levels: u64,
    first_level: Option<Duration>,
}

/// Serves one streaming `/v1/discover` on `stream`. Returns whether the
/// connection is still in a clean, reusable state: a finished chunked
/// body (terminating zero-chunk written) keeps keep-alive intact; a write
/// failure or an in-band error object forces a close.
fn stream_discover(
    shared: &Shared,
    plan: StreamPlan,
    stream: &mut TcpStream,
    keep_alive: bool,
    received: Instant,
) -> bool {
    // Followers resolve their flight *before* the first byte goes out, so
    // a failed or timed-out computation still gets a real status code
    // instead of a 200 head followed by an in-band error.
    let source = match plan.source {
        StreamSource::Follow(flight) => match flight.wait(shared.config.job_timeout) {
            Some(Ok(result)) => ResolvedSource::Replay(result),
            Some(Err(msg)) => {
                return flight_error(msg)
                    .into_response(true)
                    .write_to(stream, keep_alive)
                    .is_ok()
            }
            None => {
                return ApiError::job_timeout()
                    .into_response(true)
                    .write_to(stream, keep_alive)
                    .is_ok()
            }
        },
        StreamSource::Replay(result) => ResolvedSource::Replay(result),
        StreamSource::Live { rx, flight } => ResolvedSource::Live { rx, flight },
    };

    shared.metrics.streams_total.fetch_add(1, Ordering::Relaxed);
    let mut tally = StreamTally::default();
    let (payload_bytes, clean) = match ChunkedBody::start(stream, 200, &[], keep_alive) {
        Ok(body) => pump_stream(shared, &plan.dataset, source, body, received, &mut tally),
        Err(_) => (0, false),
    };
    shared
        .metrics
        .stream_bytes
        .fetch_add(payload_bytes, Ordering::Relaxed);
    shared
        .metrics
        .levels_streamed
        .fetch_add(tally.levels, Ordering::Relaxed);
    if let Some(latency) = tally.first_level {
        shared.metrics.record_first_level_latency(latency);
    }
    clean
}

/// Writes the NDJSON body: level lines, then the trailer (or an in-band
/// error object). Returns `(payload_bytes, connection_reusable)`.
fn pump_stream<W: Write>(
    shared: &Shared,
    dataset: &str,
    source: ResolvedSource,
    mut body: ChunkedBody<'_, W>,
    received: Instant,
    tally: &mut StreamTally,
) -> (u64, bool) {
    let deadline = received + shared.config.job_timeout;
    match source {
        ResolvedSource::Replay(result) => {
            for line in &result.levels {
                if write_level(&mut body, line, received, tally).is_err() {
                    return (body.payload_bytes(), false);
                }
            }
            finish_with_trailer(body, dataset, &result)
        }
        ResolvedSource::Live { rx, flight } => {
            loop {
                let Some(left) = deadline.checked_duration_since(Instant::now()) else {
                    return abort_stream(body, ApiError::job_timeout());
                };
                match rx.recv_timeout(left) {
                    Ok(line) => {
                        if write_level(&mut body, &line, received, tally).is_err() {
                            // Dropping `rx` (on return) fails the worker's
                            // next send; the search runs on for the cache.
                            return (body.payload_bytes(), false);
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        return abort_stream(body, ApiError::job_timeout());
                    }
                    // The worker dropped its sender: the search is done
                    // and the publish is imminent.
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            let left = deadline
                .checked_duration_since(Instant::now())
                .unwrap_or_default()
                .max(Duration::from_millis(100));
            match flight.wait(left) {
                Some(Ok(result)) => finish_with_trailer(body, dataset, &result),
                Some(Err(msg)) => abort_stream(body, flight_error(msg)),
                None => abort_stream(body, ApiError::job_timeout()),
            }
        }
    }
}

/// One level line as one chunk (chunk boundaries align with NDJSON lines).
fn write_level<W: Write>(
    body: &mut ChunkedBody<'_, W>,
    line: &str,
    received: Instant,
    tally: &mut StreamTally,
) -> io::Result<()> {
    body.write_chunk(format!("{line}\n").as_bytes())?;
    tally.levels += 1;
    if tally.first_level.is_none() {
        tally.first_level = Some(received.elapsed());
    }
    Ok(())
}

fn finish_with_trailer<W: Write>(
    mut body: ChunkedBody<'_, W>,
    dataset: &str,
    result: &CachedResult,
) -> (u64, bool) {
    let line = format!("{}\n", render_trailer(dataset, result));
    if body.write_chunk(line.as_bytes()).is_err() {
        return (body.payload_bytes(), false);
    }
    let bytes = body.payload_bytes();
    (bytes, body.finish().is_ok())
}

/// The head is already out as 200, so the failure travels in-band as a
/// final NDJSON error object; the body is still terminated properly, but
/// the connection closes — this stream did not deliver its result.
fn abort_stream<W: Write>(mut body: ChunkedBody<'_, W>, err: ApiError) -> (u64, bool) {
    let line = format!(
        "{}\n",
        Json::obj([(
            "error",
            Json::obj([
                ("code", Json::Str(err.code.to_string())),
                ("message", Json::Str(err.message)),
            ]),
        )])
        .render()
    );
    let _ = body.write_chunk(line.as_bytes());
    let bytes = body.payload_bytes();
    let _ = body.finish();
    (bytes, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_request_parsing() {
        let s = parse_discover(br#"{"dataset":"wbc"}"#, false).unwrap();
        assert_eq!(s.dataset, "wbc");
        assert_eq!(s.mode, DiscoverMode::Exact);
        assert_eq!(s.storage, Storage::Memory);
        assert_eq!(s.threads, default_threads(), "default is all cores");
        assert!(!s.stream);

        // The serial, paper-faithful run stays reachable explicitly.
        let s = parse_discover(br#"{"dataset":"wbc","threads":1}"#, false).unwrap();
        assert_eq!(s.threads, 1);

        let s = parse_discover(
            br#"{"dataset":"wbc","epsilon":0.05,"max_lhs":3,"storage":"disk","cache_mb":16,"threads":2}"#,
            false,
        )
        .unwrap();
        assert_eq!(s.mode, DiscoverMode::Approx(0.05));
        assert_eq!(s.max_lhs, Some(3));
        assert_eq!(
            s.storage,
            Storage::Disk {
                cache_bytes: 16 << 20
            }
        );
        assert_eq!(s.threads, 2);

        // Explicit epsilon 0 is the exact mode, as it always was.
        let s = parse_discover(br#"{"dataset":"wbc","epsilon":0.0}"#, false).unwrap();
        assert_eq!(s.mode, DiscoverMode::Exact);

        assert!(parse_discover(b"not json", false).is_err());
        assert!(parse_discover(br#"{"epsilon":0.1}"#, false)
            .unwrap_err()
            .message
            .contains("dataset"));
        assert!(parse_discover(br#"{"dataset":"x","epsilon":1.5}"#, false)
            .unwrap_err()
            .message
            .contains("[0,1]"));
        assert!(parse_discover(br#"{"dataset":"x","storage":"tape"}"#, false).is_err());
        assert!(parse_discover(br#"{"dataset":"x","threads":0}"#, false).is_err());
        assert!(parse_discover(br#"{"dataset":"x","cache_mb":4}"#, false).is_err());
    }

    #[test]
    fn unknown_fields_get_their_own_slug() {
        let err = parse_discover(br#"{"dataset":"x","typo_field":1}"#, false).unwrap_err();
        assert_eq!(err.code, "unknown_field");
        assert_eq!(err.message, "unknown field `typo_field`");
        // Other rejections keep the generic slug.
        let err = parse_discover(b"not json", false).unwrap_err();
        assert_eq!(err.code, "invalid-body");
    }

    #[test]
    fn stream_and_top_k_are_versioned_only() {
        // Legacy /discover: `stream` and `top_k` stay unknown fields, with
        // the exact historical message bytes.
        for body in [
            &br#"{"dataset":"x","stream":true}"#[..],
            &br#"{"dataset":"x","top_k":5}"#[..],
        ] {
            let err = parse_discover(body, false).unwrap_err();
            assert_eq!(err.code, "unknown_field");
            assert!(err.message.starts_with("unknown field `"));
        }
        // /v1/discover accepts both.
        assert!(
            parse_discover(br#"{"dataset":"x","stream":true}"#, true)
                .unwrap()
                .stream
        );
        assert!(
            !parse_discover(br#"{"dataset":"x","stream":false}"#, true)
                .unwrap()
                .stream
        );
        assert!(parse_discover(br#"{"dataset":"x","stream":1}"#, true)
            .unwrap_err()
            .message
            .contains("boolean"));
    }

    #[test]
    fn top_k_parses_into_ranked_mode() {
        let s = parse_discover(br#"{"dataset":"x","top_k":10}"#, true).unwrap();
        assert_eq!(s.mode, DiscoverMode::TopK(10));
        // k = 0 is legal: an immediately-empty ranked search.
        let s = parse_discover(br#"{"dataset":"x","top_k":0}"#, true).unwrap();
        assert_eq!(s.mode, DiscoverMode::TopK(0));
        // epsilon 0 still counts as choosing the threshold contract.
        let err = parse_discover(br#"{"dataset":"x","top_k":3,"epsilon":0.0}"#, true).unwrap_err();
        assert!(err.message.contains("mutually exclusive"));
        let err = parse_discover(br#"{"dataset":"x","top_k":3,"epsilon":0.1}"#, true).unwrap_err();
        assert!(err.message.contains("mutually exclusive"));
        assert!(parse_discover(br#"{"dataset":"x","top_k":-2}"#, true)
            .unwrap_err()
            .message
            .contains("non-negative"));
        assert!(parse_discover(br#"{"dataset":"x","top_k":"ten"}"#, true)
            .unwrap_err()
            .message
            .contains("non-negative"));
    }

    #[test]
    fn version_prefix_is_split_once() {
        assert_eq!(split_version("/v1/discover"), ("/discover", true));
        assert_eq!(split_version("/v1/datasets/abc"), ("/datasets/abc", true));
        assert_eq!(split_version("/discover"), ("/discover", false));
        assert_eq!(split_version("/v1"), ("/v1", false));
        assert_eq!(split_version("/v1x/health"), ("/v1x/health", false));
        assert_eq!(split_version("/v2/health"), ("/v2/health", false));
    }

    #[test]
    fn api_errors_shape_per_version() {
        let body = |r: Response| Json::parse(std::str::from_utf8(&r.body).unwrap()).unwrap();
        let legacy =
            body(ApiError::new(404, "unknown-dataset", "unknown dataset `x`").into_response(false));
        assert_eq!(
            legacy.get("error").unwrap().as_str(),
            Some("unknown dataset `x`")
        );
        let v1 =
            body(ApiError::new(404, "unknown-dataset", "unknown dataset `x`").into_response(true));
        let err = v1.get("error").unwrap();
        assert_eq!(err.get("code").unwrap().as_str(), Some("unknown-dataset"));
        assert_eq!(
            err.get("message").unwrap().as_str(),
            Some("unknown dataset `x`")
        );
        // retry-after survives both shapes.
        let r = ApiError::new(429, "queue-full", "job queue full")
            .with_retry_after("1")
            .into_response(true);
        assert!(r
            .extra_headers
            .iter()
            .any(|(n, v)| n == "retry-after" && v == "1"));
    }

    #[test]
    fn upload_names_are_validated() {
        assert!(valid_name("my-data_set.v2"));
        assert!(!valid_name(""));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
        assert!(!valid_name(&"x".repeat(200)));
    }
}
