//! The discovery service: accept loop, worker pool, and request routing.
//!
//! Architecture (one box per thread kind):
//!
//! ```text
//! accept loop ──► handler thread per connection ──► bounded JobQueue ──► worker pool
//!      │                │  ▲                                               │
//!      │                ▼  │ single-flight wait                            ▼
//!   shutdown         ResultCache ◄──────────────────── publish ── tane_core::search
//! ```
//!
//! Handlers never compute: they resolve the dataset, claim or join a cache
//! flight, and wait. Workers own the searches. One handler thread serves a
//! connection for its whole keep-alive lifetime (up to
//! `max_requests_per_conn` requests, closing after `idle_timeout` of
//! silence), and the thread-per-connection spawn is bounded by a
//! connection semaphore — connections over `max_connections` are shed
//! with 503 + `Retry-After`. Overload is likewise shed at the queue
//! (HTTP 429), never absorbed into memory. Shutdown (SIGTERM, SIGINT, or
//! `POST /shutdown`) stops the accept loop, answers each persistent
//! connection's in-flight request with `connection: close`, lets workers
//! finish the jobs they hold, and fails the undrained backlog with 503.

use std::io::{self, BufReader};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::cache::{CacheKey, CachedResult, JobResult, Lookup, ResultCache};
use crate::http::{is_timeout, read_request, Request, RequestError, Response};
use crate::metrics::Metrics;
use crate::queue::{JobQueue, PushError};
use crate::registry::DatasetRegistry;
use tane_core::{
    discover_approx_fds, discover_fds, ApproxTaneConfig, Storage, TaneConfig, TaneResult,
};
use tane_relation::csv::{read_csv_from, CsvOptions};
use tane_relation::Relation;
use tane_util::Json;

/// Set by the SIGTERM/SIGINT handler; polled by every accept loop.
static SIGNAL_SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Installs process signal handlers that request a graceful shutdown.
/// Idempotent; a no-op off Unix. Called by `tane serve`, not by tests.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        extern "C" fn on_signal(_sig: i32) {
            SIGNAL_SHUTDOWN.store(true, Ordering::SeqCst);
        }
        extern "C" {
            /// POSIX `signal(2)`, linked from libc via std. The handler only
            /// performs an atomic store, which is async-signal-safe.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

/// Tunables of one server instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads running searches. `0` is allowed (nothing ever
    /// drains — useful for overload tests).
    pub workers: usize,
    /// Maximum queued (not yet running) jobs before 429.
    pub queue_capacity: usize,
    /// Maximum request body size (CSV uploads, discover bodies).
    pub max_body_bytes: usize,
    /// Socket write timeout, and the read timeout while *inside* a request
    /// (a client that stalls mid-request is disconnected after this).
    pub read_timeout: Duration,
    /// How long a handler waits for its job before answering 504.
    pub job_timeout: Duration,
    /// Finished results kept in the cache.
    pub cache_capacity: usize,
    /// Concurrent connections served; excess connections are shed with
    /// 503 + `Retry-After` instead of spawning unbounded handler threads.
    pub max_connections: usize,
    /// Requests one keep-alive connection may carry before the server
    /// closes it (a fairness valve against connection squatting).
    pub max_requests_per_conn: usize,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the server disconnects it.
    pub idle_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map_or(4, usize::from),
            queue_capacity: 64,
            max_body_bytes: 8 << 20,
            read_timeout: Duration::from_secs(10),
            job_timeout: Duration::from_secs(120),
            cache_capacity: 256,
            max_connections: 1024,
            max_requests_per_conn: 1000,
            idle_timeout: Duration::from_secs(10),
        }
    }
}

/// One unit of worker work: a claimed cache key plus everything needed to
/// run the search and publish the result.
struct Job {
    key: CacheKey,
    relation: Arc<Relation>,
    epsilon: f64,
    max_lhs: Option<usize>,
    storage: Storage,
    threads: usize,
}

/// State shared by every thread of one server.
struct Shared {
    config: ServerConfig,
    registry: DatasetRegistry,
    cache: ResultCache,
    queue: JobQueue<Job>,
    metrics: Metrics,
    shutdown: AtomicBool,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || SIGNAL_SHUTDOWN.load(Ordering::SeqCst)
    }

    /// Claims a connection slot, or reports the cap reached. The gauge in
    /// `metrics.connections_active` *is* the semaphore count; handlers
    /// release by decrementing it when they finish.
    fn try_admit_connection(&self) -> bool {
        let active = &self.metrics.connections_active;
        let mut current = active.load(Ordering::Relaxed);
        loop {
            if current >= self.config.max_connections {
                return false;
            }
            match active.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(now) => current = now,
            }
        }
    }

    fn release_connection(&self) {
        self.metrics.connections_active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// A running server; dropping it does NOT stop it — call [`Server::shutdown`]
/// then [`Server::wait`], or let a signal / `POST /shutdown` end it.
pub struct Server {
    local_addr: std::net::SocketAddr,
    shared: Arc<Shared>,
    accept_thread: std::thread::JoinHandle<()>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:0`) and starts the accept loop and
    /// worker pool.
    pub fn start(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            registry: DatasetRegistry::new(),
            cache: ResultCache::new(config.cache_capacity),
            queue: JobQueue::new(config.queue_capacity),
            metrics: Metrics::new(config.workers),
            shutdown: AtomicBool::new(false),
            config,
        });

        let mut workers = Vec::new();
        for i in 0..shared.config.workers {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tane-worker-{i}"))
                    .spawn(move || worker_loop(&shared))?,
            );
        }

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("tane-accept".into())
                .spawn(move || accept_loop(&listener, &shared, workers))?
        };

        Ok(Server { local_addr, shared, accept_thread })
    }

    /// The bound address (resolves `:0` ports).
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.local_addr
    }

    /// Requests a graceful shutdown (idempotent).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until the server has fully stopped: accept loop ended,
    /// workers drained and joined.
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, workers: Vec<std::thread::JoinHandle<()>>) {
    while !shared.shutting_down() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if !shared.try_admit_connection() {
                    shed_connection(shared, stream);
                    continue;
                }
                shared.metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                let handler_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new().name("tane-handler".into()).spawn(
                    move || {
                        handle_connection(&handler_shared, stream);
                        handler_shared.release_connection();
                    },
                );
                if spawned.is_err() {
                    // The closure (and its permit release) never ran; the
                    // stream was dropped with it. Give the slot back here.
                    shared.release_connection();
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    // Drain: fail the backlog so its waiters unblock, let workers finish
    // the jobs they already hold, then join them.
    for job in shared.queue.close() {
        shared.cache.abort(job.key, "server shutting down");
    }
    for w in workers {
        let _ = w.join();
    }
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.metrics.workers_busy.fetch_add(1, Ordering::Relaxed);
        let key = job.key;
        let result = run_job(shared, job);
        match &result {
            Ok(_) => shared.metrics.jobs_completed.fetch_add(1, Ordering::Relaxed),
            Err(_) => shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed),
        };
        shared.cache.publish(key, result);
        shared.metrics.workers_busy.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Runs one discovery job and shapes the outcome for the cache.
fn run_job(shared: &Shared, job: Job) -> JobResult {
    let base = TaneConfig {
        storage: job.storage,
        max_lhs: job.max_lhs,
        threads: job.threads,
        ..TaneConfig::default()
    };
    let outcome = if job.epsilon > 0.0 {
        let config = ApproxTaneConfig { base, ..ApproxTaneConfig::new(job.epsilon) };
        discover_approx_fds(&job.relation, &config)
    } else {
        discover_fds(&job.relation, &base)
    };
    match outcome {
        Ok(result) => {
            shared.metrics.record_search(&result.stats);
            Ok(Arc::new(shape_result(&job.relation, &result)))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Renders a `TaneResult` into the cached, response-ready form. The `fds`
/// strings use `Fd::display_with`, so they are byte-identical to the lines
/// `tane discover` prints for the same data and parameters.
fn shape_result(relation: &Relation, result: &TaneResult) -> CachedResult {
    let names = relation.schema().names();
    let s = &result.stats;
    let stats = Json::obj([
        ("levels", Json::Num(s.levels as f64)),
        ("sets_total", Json::Num(s.sets_total as f64)),
        ("sets_max_level", Json::Num(s.sets_max_level as f64)),
        ("validity_tests", Json::Num(s.validity_tests as f64)),
        ("keys_found", Json::Num(s.keys_found as f64)),
        ("products", Json::Num(s.products as f64)),
        ("g3_exact_computations", Json::Num(s.g3_exact_computations as f64)),
        ("g3_decided_by_bounds", Json::Num(s.g3_decided_by_bounds as f64)),
        ("disk_reads", Json::Num(s.disk_reads as f64)),
        ("disk_writes", Json::Num(s.disk_writes as f64)),
        ("disk_bytes_read", Json::Num(s.disk_bytes_read as f64)),
        ("disk_bytes_written", Json::Num(s.disk_bytes_written as f64)),
        (
            "level_secs",
            Json::Arr(s.level_times.iter().map(|t| Json::Num(t.as_secs_f64())).collect()),
        ),
        ("elapsed_secs", Json::Num(s.elapsed.as_secs_f64())),
    ]);
    CachedResult {
        fds: result.fds.iter().map(|fd| fd.display_with(names)).collect(),
        keys: result.keys.iter().map(|k| k.display_with(names).to_string()).collect(),
        stats,
        compute_secs: s.elapsed.as_secs_f64(),
    }
}

/// Refuses a connection over the cap: one quick 503 with `Retry-After`,
/// written from a short-lived thread so a slow peer cannot stall the
/// accept loop, then the socket closes.
fn shed_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.metrics.connections_shed.fetch_add(1, Ordering::Relaxed);
    let _ = std::thread::Builder::new().name("tane-shed".into()).spawn(move || {
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = Response::error(503, "connection limit reached")
            .with_header("retry-after", "1")
            .write_to(&mut stream, false);
    });
}

/// Serves one connection for its whole keep-alive lifetime.
///
/// The `BufReader` persists across requests, so bytes of a pipelined
/// follow-up that arrived with an earlier read are served without touching
/// the socket. The connection closes when the client asks (`Connection:
/// close`), idles past `idle_timeout`, exhausts `max_requests_per_conn`,
/// commits a framing error (answered, then closed — the stream position is
/// no longer trustworthy, and reusing it is exactly the smuggling desync
/// the parser exists to prevent), or when the server starts shutting down
/// (drain: the in-flight request is still answered, with
/// `connection: close`).
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(shared.config.idle_timeout));
    let _ = stream.set_write_timeout(Some(shared.config.read_timeout));
    let read_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let mut reader = BufReader::new(read_half);
    let mut served: u64 = 0;
    loop {
        let (response, keep_alive) = match read_request(&mut reader, shared.config.max_body_bytes)
        {
            Ok(request) => {
                shared.metrics.requests_total.fetch_add(1, Ordering::Relaxed);
                if served > 0 {
                    shared.metrics.connections_reused.fetch_add(1, Ordering::Relaxed);
                }
                served += 1;
                let response = route(shared, &request);
                let keep = request.keep_alive
                    && served < shared.config.max_requests_per_conn as u64
                    && !shared.shutting_down();
                (response, keep)
            }
            // The quiet ends of a keep-alive connection: the client hung
            // up between requests, or sat idle past the timeout.
            Err(RequestError::Closed) | Err(RequestError::Idle) => break,
            // Framing errors are answered, then the connection closes.
            Err(RequestError::TooLarge) => (Response::error(413, "request too large"), false),
            Err(RequestError::Bad(msg)) => (Response::error(400, &msg), false),
            Err(RequestError::NotImplemented(msg)) => (Response::error(501, &msg), false),
            Err(RequestError::Io(e)) if is_timeout(&e) => {
                // Stalled *mid*-request (Idle covers the between-requests
                // case): tell the client before hanging up.
                (Response::error(408, "timed out reading request"), false)
            }
            Err(RequestError::Io(_)) => break, // client went away; nothing to say
        };
        if response.write_to(&mut stream, keep_alive).is_err() {
            break;
        }
        if !keep_alive {
            break;
        }
    }
    shared.metrics.record_connection_end(served);
}

fn route(shared: &Shared, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/health") => Response::json(
            200,
            &Json::obj([(
                "status",
                Json::Str(if shared.shutting_down() { "shutting down" } else { "ok" }.into()),
            )]),
        ),
        ("GET", "/metrics") => {
            let queue = (shared.queue.depth(), shared.queue.capacity());
            Response::json(200, &shared.metrics.render(queue, shared.cache.stats()))
        }
        ("GET", "/datasets") => list_datasets(shared),
        ("POST", "/discover") => discover(shared, &request.body),
        ("POST", path) if path.strip_prefix("/datasets/").is_some_and(valid_name) => {
            upload_dataset(shared, &path["/datasets/".len()..], &request.body)
        }
        ("POST", "/shutdown") => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::json(200, &Json::obj([("status", Json::Str("shutting down".into()))]))
        }
        ("GET" | "POST", _) => Response::error(404, "no such endpoint"),
        _ => Response::error(405, "method not allowed"),
    }
}

/// Upload names: non-empty, path-safe.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 128
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.')
}

fn list_datasets(shared: &Shared) -> Response {
    let rows: Vec<Json> = shared
        .registry
        .list()
        .into_iter()
        .map(|(name, shape)| match shape {
            Some((rows, attrs)) => Json::obj([
                ("name", Json::Str(name)),
                ("rows", Json::Num(rows as f64)),
                ("attrs", Json::Num(attrs as f64)),
            ]),
            None => Json::obj([("name", Json::Str(name))]),
        })
        .collect();
    Response::json(200, &Json::obj([("datasets", Json::Arr(rows))]))
}

fn upload_dataset(shared: &Shared, name: &str, body: &[u8]) -> Response {
    let relation = match read_csv_from(body, &CsvOptions::default()) {
        Ok(r) => r,
        Err(e) => return Response::error(400, &format!("bad CSV: {e}")),
    };
    let arc = shared.registry.insert(name, relation);
    Response::json(
        200,
        &Json::obj([
            ("dataset", Json::Str(name.to_string())),
            ("rows", Json::Num(arc.num_rows() as f64)),
            ("attrs", Json::Num(arc.num_attrs() as f64)),
            ("content_hash", Json::Str(format!("{:016x}", arc.content_hash()))),
        ]),
    )
}

/// The `/discover` body, validated.
#[derive(Debug)]
struct DiscoverSpec {
    dataset: String,
    epsilon: f64,
    max_lhs: Option<usize>,
    storage: Storage,
    threads: usize,
}

fn parse_discover(body: &[u8]) -> Result<DiscoverSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
    let Json::Obj(members) = &doc else {
        return Err("body must be a JSON object".into());
    };
    for (key, _) in members {
        if !matches!(key.as_str(), "dataset" | "epsilon" | "max_lhs" | "storage" | "cache_mb" | "threads") {
            return Err(format!("unknown field `{key}`"));
        }
    }
    let dataset = doc
        .get("dataset")
        .and_then(Json::as_str)
        .ok_or("missing required field `dataset`")?
        .to_string();
    let epsilon = match doc.get("epsilon") {
        None => 0.0,
        Some(v) => {
            let e = v.as_f64().ok_or("`epsilon` must be a number")?;
            if !(0.0..=1.0).contains(&e) {
                return Err(format!("`epsilon` must be in [0,1], got {e}"));
            }
            e
        }
    };
    let max_lhs = match doc.get("max_lhs") {
        None => None,
        Some(v) => Some(v.as_usize().ok_or("`max_lhs` must be a non-negative integer")?),
    };
    let storage = match doc.get("storage").map(|v| v.as_str()) {
        None | Some(Some("memory")) => Storage::Memory,
        Some(Some("disk")) => {
            let mb = match doc.get("cache_mb") {
                None => 64,
                Some(v) => v.as_usize().ok_or("`cache_mb` must be a non-negative integer")?,
            };
            Storage::Disk { cache_bytes: mb << 20 }
        }
        Some(Some(other)) => return Err(format!("unknown storage `{other}` (memory | disk)")),
        Some(None) => return Err("`storage` must be a string".into()),
    };
    if doc.get("cache_mb").is_some() && storage == Storage::Memory {
        return Err("`cache_mb` only applies to `storage: \"disk\"`".into());
    }
    let threads = match doc.get("threads") {
        None => 1,
        Some(v) => {
            let t = v.as_usize().ok_or("`threads` must be a positive integer")?;
            if t == 0 {
                return Err("`threads` must be at least 1".into());
            }
            t
        }
    };
    Ok(DiscoverSpec { dataset, epsilon, max_lhs, storage, threads })
}

fn discover(shared: &Shared, body: &[u8]) -> Response {
    let spec = match parse_discover(body) {
        Ok(s) => s,
        Err(msg) => return Response::error(400, &msg),
    };
    if shared.shutting_down() {
        return Response::error(503, "server shutting down");
    }
    let Some(relation) = shared.registry.get(&spec.dataset) else {
        return Response::error(404, &format!("unknown dataset `{}`", spec.dataset));
    };
    // The key drops the knobs that cannot change the answer (storage,
    // threads): a disk-backed query is answered by a cached in-memory run
    // of the same search, and vice versa.
    let key = CacheKey {
        dataset_hash: relation.content_hash(),
        epsilon_bits: (spec.epsilon > 0.0).then(|| spec.epsilon.to_bits()),
        max_lhs: spec.max_lhs,
    };

    let (flight, cached) = match shared.cache.lookup_or_claim(key) {
        Lookup::Hit(result) => return respond_discover(&spec.dataset, &result, true),
        Lookup::Wait(flight) => (flight, true),
        Lookup::Claimed(flight) => {
            let job = Job {
                key,
                relation,
                epsilon: spec.epsilon,
                max_lhs: spec.max_lhs,
                storage: spec.storage,
                threads: spec.threads,
            };
            if let Err((job, e)) = shared.queue.push(job) {
                let (status, msg) = match e {
                    PushError::Full => (429, "job queue full"),
                    PushError::Closed => (503, "server shutting down"),
                };
                shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                shared.cache.abort(job.key, msg);
                let mut response = Response::error(status, msg);
                if status == 429 {
                    response = response.with_header("retry-after", "1");
                }
                return response;
            }
            (flight, false)
        }
    };

    match flight.wait(shared.config.job_timeout) {
        Some(Ok(result)) => respond_discover(&spec.dataset, &result, cached),
        Some(Err(msg)) => {
            let status = if msg.contains("shutting down") || msg.contains("queue full") { 503 } else { 500 };
            Response::error(status, &msg)
        }
        None => Response::error(504, "job did not finish in time"),
    }
}

fn respond_discover(dataset: &str, result: &CachedResult, cached: bool) -> Response {
    Response::json(
        200,
        &Json::obj([
            ("dataset", Json::Str(dataset.to_string())),
            ("count", Json::Num(result.fds.len() as f64)),
            ("fds", Json::str_array(result.fds.iter().cloned())),
            ("keys", Json::str_array(result.keys.iter().cloned())),
            ("stats", result.stats.clone()),
            ("cached", Json::Bool(cached)),
            ("compute_secs", Json::Num(result.compute_secs)),
        ]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_spec_parsing() {
        let s = parse_discover(br#"{"dataset":"wbc"}"#).unwrap();
        assert_eq!(s.dataset, "wbc");
        assert_eq!(s.epsilon, 0.0);
        assert_eq!(s.storage, Storage::Memory);
        assert_eq!(s.threads, 1);

        let s = parse_discover(
            br#"{"dataset":"wbc","epsilon":0.05,"max_lhs":3,"storage":"disk","cache_mb":16,"threads":2}"#,
        )
        .unwrap();
        assert_eq!(s.epsilon, 0.05);
        assert_eq!(s.max_lhs, Some(3));
        assert_eq!(s.storage, Storage::Disk { cache_bytes: 16 << 20 });
        assert_eq!(s.threads, 2);

        assert!(parse_discover(b"not json").is_err());
        assert!(parse_discover(br#"{"epsilon":0.1}"#).unwrap_err().contains("dataset"));
        assert!(parse_discover(br#"{"dataset":"x","epsilon":1.5}"#).unwrap_err().contains("[0,1]"));
        assert!(parse_discover(br#"{"dataset":"x","storage":"tape"}"#).is_err());
        assert!(parse_discover(br#"{"dataset":"x","threads":0}"#).is_err());
        assert!(parse_discover(br#"{"dataset":"x","cache_mb":4}"#).is_err());
        assert!(parse_discover(br#"{"dataset":"x","typo_field":1}"#).unwrap_err().contains("typo_field"));
    }

    #[test]
    fn upload_names_are_validated() {
        assert!(valid_name("my-data_set.v2"));
        assert!(!valid_name(""));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
        assert!(!valid_name(&"x".repeat(200)));
    }
}
