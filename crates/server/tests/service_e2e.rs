//! End-to-end service tests over real loopback sockets: concurrency,
//! cache behaviour, overload shedding, uploads, metrics, and shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use tane_core::{discover_fds, TaneConfig};
use tane_server::{Server, ServerConfig};
use tane_util::Json;

/// Sends one request on a fresh connection (opting out of keep-alive so
/// the EOF-terminated read below works), returns `(status, parsed body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw:.60}"));
    // Every *routed* response on an unversioned path is a deprecated alias
    // of its /v1 twin and must say so. Failures that precede routing
    // (framing 400/501, body cap 413, mid-request 408, connection shed)
    // have no version to speak and carry no header.
    let pre_routing =
        matches!(status, 408 | 413 | 501) || raw.contains("\"connection limit reached\"");
    if !path.starts_with("/v1") && !pre_routing {
        assert!(
            raw.contains("deprecation: true\r\n"),
            "legacy path {path} must carry `Deprecation: true`: {raw:.200}"
        );
    }
    let body_text = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let parsed = Json::parse(body_text).unwrap_or_else(|e| panic!("bad body ({e:?}): {body_text}"));
    (status, parsed)
}

fn discover_body(dataset: &str) -> Vec<u8> {
    format!("{{\"dataset\":\"{dataset}\"}}").into_bytes()
}

fn fds_of(body: &Json) -> Vec<String> {
    body.get("fds")
        .and_then(Json::as_array)
        .expect("fds array")
        .iter()
        .map(|f| f.as_str().expect("fd string").to_string())
        .collect()
}

#[test]
fn concurrent_discover_is_correct_deduplicated_and_cached() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // The ground truth, straight from the library.
    let relation = tane_datasets::lymphography();
    let names = relation.schema().names().to_vec();
    let expected: Vec<String> = discover_fds(&relation, &TaneConfig::default())
        .unwrap()
        .fds
        .iter()
        .map(|fd| fd.display_with(&names))
        .collect();
    assert!(!expected.is_empty(), "lymphography must have dependencies");

    // 64 concurrent identical queries — the acceptance bar for sustained
    // loopback concurrency. Single-flight should answer them with very few
    // actual searches.
    let addr2 = addr;
    let clients: Vec<_> = (0..64)
        .map(|_| {
            std::thread::spawn(move || {
                call(addr2, "POST", "/discover", &discover_body("lymphography"))
            })
        })
        .collect();
    let mut cached_seen = false;
    for c in clients {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "{body:?}");
        assert_eq!(
            fds_of(&body),
            expected,
            "server must byte-match the CLI dependency set"
        );
        cached_seen |= body.get("cached").unwrap().as_bool().unwrap();
    }
    assert!(cached_seen, "concurrent identical queries must coalesce");

    // A repeat query is a straight cache hit.
    let (status, body) = call(addr, "POST", "/discover", &discover_body("lymphography"));
    assert_eq!(status, 200);
    assert_eq!(body.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(fds_of(&body), expected);

    // /metrics must show the cache working and per-level timings populated.
    let (status, metrics) = call(addr, "GET", "/metrics", b"");
    assert_eq!(status, 200);
    let cache = metrics.get("cache").unwrap();
    let hits = cache.get("hits").unwrap().as_usize().unwrap();
    let coalesced = cache.get("coalesced").unwrap().as_usize().unwrap();
    assert!(hits >= 1, "the repeat query is a guaranteed hit");
    assert!(
        hits + coalesced >= 64,
        "64 of 65 identical queries must not re-search"
    );
    assert_eq!(cache.get("entries").unwrap().as_usize(), Some(1));
    let queue = metrics.get("queue").unwrap();
    assert!(queue.get("depth").unwrap().as_usize().is_some());
    assert!(queue.get("capacity").unwrap().as_usize().unwrap() > 0);
    let levels = metrics
        .get("search")
        .unwrap()
        .get("level_times")
        .unwrap()
        .as_array()
        .unwrap();
    assert!(!levels.is_empty(), "per-level timings must be reported");
    assert!(levels[0].get("runs").unwrap().as_usize().unwrap() >= 1);

    server.shutdown();
    server.wait();
}

#[test]
fn distinct_queries_get_distinct_cache_entries() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let (status, exact) = call(addr, "POST", "/discover", &discover_body("hepatitis"));
    assert_eq!(status, 200);
    let (status, approx) = call(
        addr,
        "POST",
        "/discover",
        br#"{"dataset":"hepatitis","epsilon":0.1}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        approx.get("cached").unwrap().as_bool(),
        Some(false),
        "different key, no reuse"
    );
    // Approximate discovery at eps > 0 finds at least the exact cover.
    assert!(fds_of(&approx).len() >= 1);
    assert_ne!(fds_of(&exact), fds_of(&approx));

    // Storage backend is normalized out of the key: a disk query is served
    // from the in-memory run's cache entry.
    let (status, disk) = call(
        addr,
        "POST",
        "/discover",
        br#"{"dataset":"hepatitis","storage":"disk","cache_mb":4}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(disk.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(fds_of(&disk), fds_of(&exact));

    server.shutdown();
    server.wait();
}

#[test]
fn uploads_roundtrip_through_discovery() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let csv = b"A,B,C\n1,x,10\n2,x,10\n3,y,20\n4,y,20\n";
    let (status, up) = call(addr, "POST", "/datasets/tiny", csv);
    assert_eq!(status, 200, "{up:?}");
    assert_eq!(up.get("rows").unwrap().as_usize(), Some(4));
    assert_eq!(up.get("attrs").unwrap().as_usize(), Some(3));

    let (status, body) = call(addr, "POST", "/discover", &discover_body("tiny"));
    assert_eq!(status, 200);
    let fds = fds_of(&body);
    // B and C determine each other; A is a key.
    assert!(fds.contains(&"{B} -> C".to_string()), "{fds:?}");
    assert!(fds.contains(&"{C} -> B".to_string()), "{fds:?}");
    assert!(body
        .get("keys")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .any(|k| k.as_str() == Some("{A}")));

    // The listing shows the upload with its shape.
    let (_, listing) = call(addr, "GET", "/datasets", b"");
    let datasets = listing.get("datasets").unwrap().as_array().unwrap();
    assert!(datasets
        .iter()
        .any(|d| d.get("name").and_then(Json::as_str) == Some("tiny")
            && d.get("rows").and_then(Json::as_usize) == Some(4)));

    // Unknown datasets are a clean 404.
    let (status, _) = call(addr, "POST", "/discover", &discover_body("nonexistent"));
    assert_eq!(status, 404);

    server.shutdown();
    server.wait();
}

#[test]
fn overload_sheds_with_429_not_memory() {
    // No workers: nothing drains, so the queue fills deterministically.
    let config = ServerConfig {
        workers: 0,
        queue_capacity: 2,
        job_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // Upload first so dataset resolution succeeds.
    let csv = b"A,B\n1,1\n2,2\n";
    let (status, _) = call(addr, "POST", "/datasets/tiny", csv);
    assert_eq!(status, 200);

    // Two distinct queries occupy the queue; their handlers will 504.
    let mut blocked = Vec::new();
    for m in 1..=2 {
        let body = format!("{{\"dataset\":\"tiny\",\"max_lhs\":{m}}}").into_bytes();
        blocked.push(std::thread::spawn(move || {
            call(addr, "POST", "/discover", &body)
        }));
    }

    // Fill the queue (races with the two above are fine: only capacity
    // matters), then the next distinct query must be shed.
    let mut statuses = Vec::new();
    for m in 3..=6 {
        let body = format!("{{\"dataset\":\"tiny\",\"max_lhs\":{m}}}").into_bytes();
        let addr2 = addr;
        statuses.push(std::thread::spawn(move || {
            call(addr2, "POST", "/discover", &body).0
        }));
    }
    let results: Vec<u16> = statuses.into_iter().map(|t| t.join().unwrap()).collect();
    assert!(
        results.iter().any(|&s| s == 429),
        "queue overflow must answer 429, got {results:?}"
    );
    assert!(
        results.iter().all(|&s| s == 429 || s == 504),
        "got {results:?}"
    );
    for b in blocked {
        let (status, _) = b.join().unwrap();
        assert!(
            status == 504 || status == 429,
            "queued-forever handlers time out, got {status}"
        );
    }

    let (_, metrics) = call(addr, "GET", "/metrics", b"");
    assert!(
        metrics
            .get("queue")
            .unwrap()
            .get("rejected")
            .unwrap()
            .as_usize()
            .unwrap()
            >= 1
    );

    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_endpoint_drains_and_stops() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let (status, body) = call(addr, "POST", "/shutdown", b"");
    assert_eq!(status, 200);
    assert_eq!(body.get("status").unwrap().as_str(), Some("shutting down"));
    // wait() must return promptly: accept loop exits, workers join.
    let waiter = std::thread::spawn(move || server.wait());
    let start = std::time::Instant::now();
    waiter.join().unwrap();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "shutdown must not hang"
    );
    // The port stops answering.
    std::thread::sleep(Duration::from_millis(50));
    assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
}

#[test]
fn health_and_errors() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let (status, body) = call(addr, "GET", "/health", b"");
    assert_eq!(
        (status, body.get("status").unwrap().as_str()),
        (200, Some("ok"))
    );
    let (status, _) = call(addr, "GET", "/no-such", b"");
    assert_eq!(status, 404);
    let (status, _) = call(addr, "POST", "/discover", b"{not json");
    assert_eq!(status, 400);
    let (status, _) = call(addr, "DELETE", "/health", b"");
    assert_eq!(status, 405);
    // Body over the configured cap is refused up front.
    let tiny = ServerConfig {
        max_body_bytes: 64,
        ..ServerConfig::default()
    };
    let small = Server::start("127.0.0.1:0", tiny).unwrap();
    let (status, _) = call(
        small.local_addr(),
        "POST",
        "/datasets/big",
        &vec![b'x'; 1024],
    );
    assert_eq!(status, 413);
    small.shutdown();
    small.wait();
    server.shutdown();
    server.wait();
}

#[test]
fn worker_pool_processes_distinct_queries_in_parallel() {
    let config = ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();
    let relation = Arc::new(tane_datasets::lymphography());
    // Four different LHS caps = four distinct jobs.
    let clients: Vec<_> = (1..=4)
        .map(|m| {
            let body = format!("{{\"dataset\":\"lymphography\",\"max_lhs\":{m}}}").into_bytes();
            std::thread::spawn(move || call(addr, "POST", "/discover", &body))
        })
        .collect();
    for (i, c) in clients.into_iter().enumerate() {
        let m = i + 1;
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200);
        let expected = discover_fds(&relation, &TaneConfig::default().with_max_lhs(m)).unwrap();
        let names = relation.schema().names().to_vec();
        let want: Vec<String> = expected
            .fds
            .iter()
            .map(|fd| fd.display_with(&names))
            .collect();
        assert_eq!(fds_of(&body), want, "max_lhs={m}");
    }
    let (_, metrics) = call(addr, "GET", "/metrics", b"");
    assert_eq!(
        metrics
            .get("jobs")
            .unwrap()
            .get("completed")
            .unwrap()
            .as_usize(),
        Some(4)
    );
    server.shutdown();
    server.wait();
}
