//! Storage-fault end-to-end tests: a corrupt segment read and a blown
//! per-dataset disk quota must each come back as a structured `/v1` error
//! envelope — never a panic — and the server must keep serving afterwards.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

use tane_server::{Server, ServerConfig};
use tane_util::Json;

/// The injected-fault machinery is process-global, so the tests in this
/// binary take turns: a quota test must never observe another test's armed
/// corruption countdown.
static FAULT_SERIAL: Mutex<()> = Mutex::new(());

fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw:.60}"));
    let body_text = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let parsed = Json::parse(body_text).unwrap_or_else(|e| panic!("bad body ({e:?}): {body_text}"));
    (status, parsed)
}

/// The `/v1` error envelope's `(code, message)`.
fn envelope(body: &Json) -> (String, String) {
    let err = body.get("error").expect("error envelope");
    (
        err.get("code")
            .and_then(Json::as_str)
            .expect("code")
            .to_string(),
        err.get("message")
            .and_then(Json::as_str)
            .expect("message")
            .to_string(),
    )
}

/// A disk-mode discover body with a zero-byte cache, so parent fetches are
/// guaranteed to hit the segment files (where the fault is armed).
fn disk_body() -> &'static [u8] {
    br#"{"dataset":"lymphography","storage":"disk","cache_mb":0,"max_lhs":2}"#
}

#[test]
fn corrupt_segment_read_is_a_500_envelope_and_the_server_survives() {
    let _serial = FAULT_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Every disk read fails while the fault is armed (the level retry
    // budget is irrelevant: there is none — the first corrupt record
    // fails the search).
    tane_partition::failpoint::arm_corrupt_reads(u64::MAX);
    let (status, body) = call(addr, "POST", "/v1/discover", disk_body());
    tane_partition::failpoint::disarm();
    assert_eq!(status, 500, "{body:?}");
    let (code, message) = envelope(&body);
    assert_eq!(code, "store-corrupt", "{body:?}");
    assert!(
        message.contains("corrupt partition record"),
        "envelope carries the store's diagnosis: {message}"
    );

    // The worker survived the failed job: the same request now succeeds,
    // and the answer matches an in-memory run of the same search.
    let (status, healthy) = call(addr, "POST", "/v1/discover", disk_body());
    assert_eq!(status, 200, "{healthy:?}");
    let disk_fds = healthy.get("fds").unwrap().render();
    let (status, memory) = call(
        addr,
        "POST",
        "/v1/discover",
        br#"{"dataset":"lymphography","max_lhs":2}"#,
    );
    assert_eq!(status, 200);
    assert_eq!(
        memory.get("fds").unwrap().render(),
        disk_fds,
        "post-fault disk search answers byte-identically"
    );
    let (status, _) = call(addr, "GET", "/v1/health", b"");
    assert_eq!(status, 200);

    server.shutdown();
    server.wait();
}

#[test]
fn blown_disk_quota_is_a_507_envelope_scoped_to_the_dataset() {
    let _serial = FAULT_SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // A quota no real search fits in: the very first spilled partition
    // blows it.
    let config = ServerConfig {
        disk_quota_bytes: 64,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let (status, body) = call(addr, "POST", "/v1/discover", disk_body());
    assert_eq!(status, 507, "{body:?}");
    let (code, message) = envelope(&body);
    assert_eq!(code, "disk-quota-exceeded", "{body:?}");
    assert!(
        message.contains("disk quota exceeded"),
        "envelope names the quota: {message}"
    );

    // The quota caps *disk* spill only — the same search in memory (and
    // with it the dataset) stays fully usable.
    let (status, memory) = call(
        addr,
        "POST",
        "/v1/discover",
        br#"{"dataset":"lymphography","max_lhs":2}"#,
    );
    assert_eq!(status, 200, "{memory:?}");
    assert!(memory.get("fds").unwrap().as_array().is_some());

    server.shutdown();
    server.wait();
}
