//! End-to-end tests for the persistent-connection path: keep-alive reuse,
//! pipelining, trickled bytes, `Connection: close`, idle timeout, the
//! connection cap, and framing-error hygiene — all over real loopback
//! sockets.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tane_server::{Server, ServerConfig};
use tane_util::Json;

/// One persistent client connection speaking HTTP/1.1.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One response as the client saw it.
struct Reply {
    status: u16,
    /// The `connection:` response header value.
    connection: String,
    /// The `deprecation:` response header value, set on legacy paths.
    deprecation: Option<String>,
    /// The `allow:` response header value, set on 405 responses.
    allow: Option<String>,
    body: Json,
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    /// Writes one request; `close` adds `Connection: close`.
    fn send(&mut self, method: &str, path: &str, body: &[u8], close: bool) {
        let conn_header = if close { "connection: close\r\n" } else { "" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\n{conn_header}content-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).unwrap();
        self.stream.write_all(body).unwrap();
    }

    /// Reads exactly one framed response off the connection.
    fn recv(&mut self) -> Reply {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {line:?}"));
        let mut content_length = 0usize;
        let mut connection = String::new();
        let mut deprecation = None;
        let mut allow = None;
        loop {
            line.clear();
            self.reader.read_line(&mut line).expect("header line");
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                match name.trim().to_ascii_lowercase().as_str() {
                    "content-length" => content_length = value.trim().parse().unwrap(),
                    "connection" => connection = value.trim().to_string(),
                    "deprecation" => deprecation = Some(value.trim().to_string()),
                    "allow" => allow = Some(value.trim().to_string()),
                    _ => {}
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        let text = String::from_utf8(body).expect("UTF-8 body");
        let body = Json::parse(&text).unwrap_or_else(|e| panic!("bad body ({e:?}): {text}"));
        Reply {
            status,
            connection,
            deprecation,
            allow,
            body,
        }
    }

    /// True once the server has closed its end (read returns EOF).
    fn at_eof(&mut self) -> bool {
        matches!(self.reader.read(&mut [0u8; 1]), Ok(0))
    }
}

const CSV: &[u8] = b"A,B,C\n1,x,10\n2,x,10\n3,y,20\n4,y,20\n";

/// The acceptance-criteria test: many sequential `/discover` + `/metrics`
/// requests over a single TCP connection, with `/metrics` proving reuse.
#[test]
fn one_connection_serves_many_requests() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut conn = Conn::open(addr);
    conn.send("POST", "/datasets/tiny", CSV, false);
    let up = conn.recv();
    assert_eq!(up.status, 200, "{:?}", up.body);
    assert_eq!(up.connection, "keep-alive");
    assert_eq!(
        up.deprecation.as_deref(),
        Some("true"),
        "legacy paths are deprecated aliases"
    );

    // ≥ 8 sequential requests on the same socket, alternating endpoints.
    for i in 0..5 {
        conn.send("POST", "/discover", br#"{"dataset":"tiny"}"#, false);
        let reply = conn.recv();
        assert_eq!(reply.status, 200, "request {i}: {:?}", reply.body);
        assert_eq!(reply.connection, "keep-alive");
        assert_eq!(reply.deprecation.as_deref(), Some("true"));
        if i > 0 {
            assert_eq!(reply.body.get("cached").unwrap().as_bool(), Some(true));
        }

        conn.send("GET", "/metrics", b"", false);
        let metrics = conn.recv();
        assert_eq!(metrics.status, 200);
        assert_eq!(metrics.connection, "keep-alive");
    }

    conn.send("GET", "/metrics", b"", true);
    let last = conn.recv();
    assert_eq!(last.connection, "close", "the final request opted out");
    assert!(
        conn.at_eof(),
        "server closes after honoring Connection: close"
    );

    let conns = last.body.get("connections").unwrap();
    let reused = conns.get("reused").unwrap().as_usize().unwrap();
    assert!(
        reused >= 10,
        "11 of 12 requests rode an existing connection, got {reused}"
    );
    assert!(conns.get("accepted").unwrap().as_usize().unwrap() >= 1);
    let requests = last.body.get("requests_total").unwrap().as_usize().unwrap();
    assert!(
        requests >= 12,
        "requests are counted per request, not per connection: {requests}"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());

    // Three requests in one write, before reading any response.
    let burst = b"GET /health HTTP/1.1\r\n\r\n\
                  GET /datasets HTTP/1.1\r\n\r\n\
                  GET /metrics HTTP/1.1\r\n\r\n";
    conn.stream.write_all(burst).unwrap();
    let first = conn.recv();
    assert_eq!(first.status, 200);
    assert_eq!(first.body.get("status").unwrap().as_str(), Some("ok"));
    let second = conn.recv();
    assert!(second.body.get("datasets").is_some(), "{:?}", second.body);
    let third = conn.recv();
    assert!(
        third.body.get("requests_total").is_some(),
        "{:?}",
        third.body
    );
    assert_eq!(
        third.body.get("requests_total").unwrap().as_usize(),
        Some(3)
    );

    server.shutdown();
    server.wait();
}

#[test]
fn trickled_request_bytes_still_parse() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());

    for byte in b"GET /health HTTP/1.1\r\n\r\n" {
        conn.stream.write_all(&[*byte]).unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let reply = conn.recv();
    assert_eq!(reply.status, 200);
    assert_eq!(reply.body.get("status").unwrap().as_str(), Some("ok"));

    server.shutdown();
    server.wait();
}

#[test]
fn idle_connections_are_disconnected() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut conn = Conn::open(server.local_addr());

    // The connection works, then goes quiet.
    conn.send("GET", "/health", b"", false);
    assert_eq!(conn.recv().status, 200);
    let start = std::time::Instant::now();
    conn.stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    assert!(conn.at_eof(), "server must hang up on an idle connection");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "and do so near the idle timeout"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn request_cap_closes_the_connection() {
    let config = ServerConfig {
        max_requests_per_conn: 2,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let mut conn = Conn::open(server.local_addr());

    conn.send("GET", "/health", b"", false);
    assert_eq!(conn.recv().connection, "keep-alive");
    conn.send("GET", "/health", b"", false);
    let second = conn.recv();
    assert_eq!(second.status, 200);
    assert_eq!(second.connection, "close", "the cap closes the connection");
    assert!(conn.at_eof());

    server.shutdown();
    server.wait();
}

#[test]
fn connections_over_the_cap_are_shed_with_503() {
    let config = ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    };
    let server = Server::start("127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    // The one admitted connection stays open (keep-alive, active).
    let mut admitted = Conn::open(addr);
    admitted.send("GET", "/health", b"", false);
    assert_eq!(admitted.recv().status, 200);

    // Everything else bounces with 503 + Retry-After and a closed socket.
    let mut shed = Conn::open(addr);
    let reply = shed.recv();
    assert_eq!(reply.status, 503, "{:?}", reply.body);
    assert_eq!(reply.connection, "close");
    assert!(shed.at_eof());

    let mut headers_probe = Conn::open(addr);
    let raw = {
        let mut text = String::new();
        headers_probe.reader.read_to_string(&mut text).unwrap();
        text
    };
    assert!(raw.contains("retry-after: 1\r\n"), "{raw}");

    // The admitted connection still works and sees the shed count.
    admitted.send("GET", "/metrics", b"", false);
    let metrics = admitted.recv();
    let conns = metrics.body.get("connections").unwrap();
    assert!(
        conns.get("shed").unwrap().as_usize().unwrap() >= 2,
        "{:?}",
        conns
    );
    assert_eq!(conns.get("active").unwrap().as_usize(), Some(1));

    // Releasing the slot readmits new connections.
    admitted.send("GET", "/health", b"", true);
    assert_eq!(admitted.recv().connection, "close");
    assert!(admitted.at_eof());
    for _ in 0..50 {
        // The slot frees asynchronously with the handler thread.
        let mut retry = Conn::open(addr);
        retry.send("GET", "/health", b"", true);
        if retry.recv().status == 200 {
            server.shutdown();
            server.wait();
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("slot was never released");
}

/// The request-smuggling scenarios the parser bugfixes close off: a
/// chunked body and duplicate Content-Length are answered 501/400 and the
/// connection is closed, so the ambiguous trailing bytes can never be
/// parsed as a second request (here the smuggled payload is a
/// `POST /shutdown` that must NOT take effect).
#[test]
fn framing_errors_are_answered_then_the_connection_closes() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut chunked = Conn::open(addr);
    chunked
        .stream
        .write_all(
            b"POST /discover HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n\
              1c\r\nPOST /shutdown HTTP/1.1\r\n\r\n\r\n0\r\n\r\n",
        )
        .unwrap();
    let reply = chunked.recv();
    assert_eq!(reply.status, 501, "{:?}", reply.body);
    assert_eq!(reply.connection, "close");
    assert!(
        chunked.at_eof(),
        "no desync: the smuggled bytes are never parsed"
    );

    let mut dup = Conn::open(addr);
    dup.stream
        .write_all(
            b"POST /discover HTTP/1.1\r\nContent-Length: 0\r\nContent-Length: 29\r\n\r\n\
              POST /shutdown HTTP/1.1\r\n\r\n",
        )
        .unwrap();
    let reply = dup.recv();
    assert_eq!(reply.status, 400, "{:?}", reply.body);
    assert_eq!(reply.connection, "close");
    assert!(dup.at_eof());

    // The smuggled shutdowns never happened: the server still answers.
    let mut probe = Conn::open(addr);
    probe.send("GET", "/health", b"", true);
    let health = probe.recv();
    assert_eq!(health.status, 200);
    assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));

    server.shutdown();
    server.wait();
}

/// PATCH shares the persistent-connection framing with every other verb:
/// a row patch, a 404, and a 405 (with its Allow header) all ride one
/// keep-alive socket without desyncing the stream.
#[test]
fn patch_requests_frame_cleanly_on_a_persistent_connection() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());

    conn.send("POST", "/v1/datasets/tiny", CSV, false);
    assert_eq!(conn.recv().status, 200);

    // A real row patch, framed like any other request.
    conn.send(
        "PATCH",
        "/v1/datasets/tiny/rows",
        br#"{"append":[["5","z","30"]],"delete":[0]}"#,
        false,
    );
    let patched = conn.recv();
    assert_eq!(patched.status, 200, "{:?}", patched.body);
    assert_eq!(patched.connection, "keep-alive");
    assert_eq!(patched.body.get("generation").unwrap().as_usize(), Some(1));
    assert_eq!(patched.body.get("rows").unwrap().as_usize(), Some(4));

    // PATCH on a path that isn't .../rows is an unknown endpoint.
    conn.send("PATCH", "/v1/datasets/tiny", b"{}", false);
    let wrong_path = conn.recv();
    assert_eq!(wrong_path.status, 404);
    assert_eq!(wrong_path.connection, "keep-alive");

    // An unroutable verb gets 405 plus the Allow header, and the
    // connection survives for the next request.
    conn.send("PUT", "/v1/discover", b"{}", false);
    let put = conn.recv();
    assert_eq!(put.status, 405, "{:?}", put.body);
    assert_eq!(put.allow.as_deref(), Some("POST"));
    assert_eq!(put.connection, "keep-alive");

    conn.send("DELETE", "/health", b"", false);
    let del = conn.recv();
    assert_eq!(del.status, 405);
    assert_eq!(del.allow.as_deref(), Some("GET"));

    conn.send("PUT", "/v1/datasets/tiny/rows", b"", false);
    let put_rows = conn.recv();
    assert_eq!(put_rows.status, 405);
    assert_eq!(put_rows.allow.as_deref(), Some("PATCH"));

    // Framing held throughout: the socket still answers normally.
    conn.send("GET", "/health", b"", true);
    let health = conn.recv();
    assert_eq!(health.status, 200);
    assert_eq!(health.body.get("status").unwrap().as_str(), Some("ok"));
    assert!(conn.at_eof());

    server.shutdown();
    server.wait();
}

#[test]
fn shutdown_closes_persistent_connections_after_the_inflight_request() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    conn.send("GET", "/health", b"", false);
    assert_eq!(conn.recv().connection, "keep-alive");

    server.shutdown();
    // The next request is still answered — drain, not drop — but the
    // response announces the close.
    conn.send("GET", "/health", b"", false);
    let reply = conn.recv();
    assert_eq!(reply.status, 200);
    assert_eq!(
        reply.connection, "close",
        "persistent handlers observe shutdown"
    );
    assert!(conn.at_eof());
    server.wait();
}
