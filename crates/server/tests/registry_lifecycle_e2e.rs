//! Generation-lifecycle tests for mutable datasets: delete → re-upload
//! under the same name, cache staleness across PATCH (eager eviction,
//! `evicted_stale` in /metrics), concurrent discovery racing a patch, and
//! the built-in corpus refusing mutation — all over loopback sockets.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tane_core::{discover_fds, TaneConfig};
use tane_relation::{Schema, Value};
use tane_server::{Server, ServerConfig};
use tane_util::Json;

/// One request on a fresh `Connection: close` socket → `(status, body)`.
fn call(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: localhost\r\nconnection: close\r\ncontent-length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.get(..3))
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line: {raw:.60}"));
    let body_text = raw.split("\r\n\r\n").nth(1).unwrap_or("");
    let parsed = Json::parse(body_text).unwrap_or_else(|e| panic!("bad body ({e:?}): {body_text}"));
    (status, parsed)
}

fn fds_of(body: &Json) -> Vec<String> {
    body.get("fds")
        .and_then(Json::as_array)
        .expect("fds array")
        .iter()
        .map(|f| f.as_str().expect("fd string").to_string())
        .collect()
}

const CSV_V1: &[u8] = b"A,B,C\n1,x,10\n2,x,10\n3,y,20\n4,y,20\n";
const CSV_V2: &[u8] = b"A,B,C\n1,x,10\n1,y,10\n2,x,20\n2,y,20\n3,x,30\n";

#[test]
fn delete_then_reupload_same_name_is_a_fresh_generation() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let (status, up1) = call(addr, "POST", "/v1/datasets/churn", CSV_V1);
    assert_eq!(status, 200, "{up1:?}");
    let hash1 = up1
        .get("content_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    let (status, first) = call(addr, "POST", "/v1/discover", br#"{"dataset":"churn"}"#);
    assert_eq!(status, 200, "{first:?}");

    let (status, _) = call(addr, "DELETE", "/v1/datasets/churn", b"");
    assert_eq!(status, 200);
    let (status, _) = call(addr, "GET", "/v1/datasets/churn", b"");
    assert_eq!(status, 404, "deleted uploads no longer resolve");
    let (status, body) = call(addr, "POST", "/v1/discover", br#"{"dataset":"churn"}"#);
    assert_eq!(status, 404, "{body:?}");

    // Same name, different data: a brand-new lineage, not a resurrection.
    let (status, up2) = call(addr, "POST", "/v1/datasets/churn", CSV_V2);
    assert_eq!(status, 200, "{up2:?}");
    let hash2 = up2
        .get("content_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_ne!(hash1, hash2);
    let (status, second) = call(addr, "POST", "/v1/discover", br#"{"dataset":"churn"}"#);
    assert_eq!(status, 200, "{second:?}");
    assert_eq!(
        second.get("cached").unwrap().as_bool(),
        Some(false),
        "the new generation cannot hit the old generation's cache"
    );
    assert_ne!(fds_of(&first), fds_of(&second));
}

#[test]
fn patch_evicts_stale_results_and_metrics_count_it() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let (status, _) = call(addr, "POST", "/v1/datasets/mut", CSV_V1);
    assert_eq!(status, 200);
    let (status, warm) = call(addr, "POST", "/v1/discover", br#"{"dataset":"mut"}"#);
    assert_eq!(status, 200, "{warm:?}");

    // Rows 1 and 2 agreed on B,C; the appended row breaks B -> C.
    let (status, patched) = call(
        addr,
        "PATCH",
        "/v1/datasets/mut/rows",
        br#"{"append":[["5","x","99"]]}"#,
    );
    assert_eq!(status, 200, "{patched:?}");
    assert_eq!(patched.get("generation").unwrap().as_usize(), Some(1));
    assert_eq!(patched.get("rows").unwrap().as_usize(), Some(5));

    let (status, metrics) = call(addr, "GET", "/v1/metrics", b"");
    assert_eq!(status, 200);
    let cache = metrics.get("cache").expect("cache block");
    assert!(
        cache.get("evicted_stale").unwrap().as_usize().unwrap() >= 1,
        "the old generation's cached result was evicted eagerly: {cache:?}"
    );

    let (status, fresh) = call(addr, "POST", "/v1/discover", br#"{"dataset":"mut"}"#);
    assert_eq!(status, 200, "{fresh:?}");
    assert_eq!(
        fresh.get("cached").unwrap().as_bool(),
        Some(false),
        "post-patch discovery recomputes"
    );
    assert_ne!(
        fds_of(&warm),
        fds_of(&fresh),
        "the appended row changes the dependencies"
    );
    let stats = fresh.get("stats").expect("stats block");
    assert!(
        stats
            .get("partitions_supplied")
            .unwrap()
            .as_usize()
            .unwrap()
            > 0,
        "the incremental engine supplied merged partitions: {stats:?}"
    );

    // And the new generation caches normally.
    let (_, again) = call(addr, "POST", "/v1/discover", br#"{"dataset":"mut"}"#);
    assert_eq!(again.get("cached").unwrap().as_bool(), Some(true));
    assert_eq!(fds_of(&fresh), fds_of(&again));
}

#[test]
fn builtins_reject_patch_with_403_envelope() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let (status, body) = call(
        addr,
        "PATCH",
        "/v1/datasets/lymphography/rows",
        br#"{"delete":[0]}"#,
    );
    assert_eq!(status, 403, "{body:?}");
    let err = body.get("error").expect("versioned error envelope");
    assert_eq!(err.get("code").unwrap().as_str(), Some("builtin-dataset"));
    assert!(
        err.get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("built-in"),
        "{err:?}"
    );

    // Unknown uploads 404; malformed bodies 400; oversized patches 413.
    let (status, _) = call(
        addr,
        "PATCH",
        "/v1/datasets/ghost/rows",
        br#"{"delete":[0]}"#,
    );
    assert_eq!(status, 404);
    let (status, _) = call(addr, "POST", "/v1/datasets/tiny", CSV_V1);
    assert_eq!(status, 200);
    let (status, body) = call(addr, "PATCH", "/v1/datasets/tiny/rows", br#"{"nope":1}"#);
    assert_eq!(status, 400, "{body:?}");
    let big = format!(
        "{{\"delete\":[{}]}}",
        (0..70_000)
            .map(|i| i.to_string())
            .collect::<Vec<_>>()
            .join(",")
    );
    let (status, body) = call(addr, "PATCH", "/v1/datasets/tiny/rows", big.as_bytes());
    assert_eq!(status, 413, "{body:?}");
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("patch-too-large")
    );
}

/// Discoveries racing a stream of patches: every response must be
/// internally coherent (some generation's complete answer), and once the
/// churn stops the service must agree with a from-scratch library run on
/// the final merged rows.
#[test]
fn concurrent_discover_during_patch_stays_coherent() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let (status, _) = call(addr, "POST", "/v1/datasets/race", CSV_V1);
    assert_eq!(status, 200);

    let patcher = std::thread::spawn(move || {
        for i in 0..8 {
            let body = format!(
                "{{\"append\":[[\"{}\",\"p{}\",\"{}\"]]}}",
                100 + i,
                i % 3,
                i * 7
            );
            let (status, reply) = call(addr, "PATCH", "/v1/datasets/race/rows", body.as_bytes());
            assert_eq!(status, 200, "patch {i}: {reply:?}");
        }
    });
    let finders: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..6 {
                    let (status, body) =
                        call(addr, "POST", "/v1/discover", br#"{"dataset":"race"}"#);
                    assert_eq!(status, 200, "{body:?}");
                    assert!(body.get("fds").is_some(), "{body:?}");
                }
            })
        })
        .collect();
    patcher.join().unwrap();
    for f in finders {
        f.join().unwrap();
    }

    // Independent ground truth: rebuild the final rows with the builder
    // and run the plain library search.
    let mut b = tane_relation::Relation::builder(Schema::new(["A", "B", "C"]).unwrap());
    for row in [
        ["1", "x", "10"],
        ["2", "x", "10"],
        ["3", "y", "20"],
        ["4", "y", "20"],
    ] {
        b.push_row(row.map(Value::parse)).unwrap();
    }
    for i in 0..8u32 {
        let row = [
            (100 + i).to_string(),
            format!("p{}", i % 3),
            (i * 7).to_string(),
        ];
        b.push_row([
            Value::parse(&row[0]),
            Value::parse(&row[1]),
            Value::parse(&row[2]),
        ])
        .unwrap();
    }
    let expected_relation = b.build();
    let names = expected_relation.schema().names().to_vec();
    let expected: Vec<String> = discover_fds(&expected_relation, &TaneConfig::default())
        .unwrap()
        .fds
        .iter()
        .map(|fd| fd.display_with(&names))
        .collect();

    let (status, settled) = call(addr, "POST", "/v1/discover", br#"{"dataset":"race"}"#);
    assert_eq!(status, 200, "{settled:?}");
    assert_eq!(
        fds_of(&settled),
        expected,
        "after the churn settles, the service matches a cold library run"
    );

    server.shutdown();
    server.wait();
}
