//! End-to-end tests for ranked (top-k) discovery over the `/v1` API: the
//! `{"event":"topk",...}` stream objects and their monotone-improvement
//! guarantee, byte-identical cache replay per `k`, the degenerate `k`
//! values, mid-stream disconnect survival, and — the compatibility half of
//! the contract — proof that the untagged level lines a ranked stream
//! emits are exactly the lines an exact stream emits for the same levels,
//! and that legacy routes now announce their `Sunset`.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use tane_server::{Server, ServerConfig};
use tane_util::Json;

/// One persistent client connection speaking HTTP/1.1.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Response head as the client saw it.
struct Head {
    status: u16,
    transfer_encoding: String,
    deprecation: Option<String>,
    sunset: Option<String>,
    content_length: usize,
}

/// One fully-read chunked response.
struct StreamReply {
    head: Head,
    chunks: Vec<String>,
}

impl StreamReply {
    /// The NDJSON objects of the stream, parsed.
    fn objects(&self) -> Vec<Json> {
        self.payload()
            .lines()
            .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("bad line ({e:?}): {line}")))
            .collect()
    }

    fn payload(&self) -> String {
        self.chunks.concat()
    }
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    fn send(&mut self, method: &str, path: &str, body: &[u8], close: bool) {
        let conn_header = if close { "connection: close\r\n" } else { "" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\n{conn_header}content-type: application/json\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).unwrap();
        self.stream.write_all(body).unwrap();
    }

    fn read_head(&mut self) -> Head {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {line:?}"));
        let mut head = Head {
            status,
            transfer_encoding: String::new(),
            deprecation: None,
            sunset: None,
            content_length: 0,
        };
        loop {
            line.clear();
            self.reader.read_line(&mut line).expect("header line");
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim().to_string();
                match name.trim().to_ascii_lowercase().as_str() {
                    "transfer-encoding" => head.transfer_encoding = value,
                    "deprecation" => head.deprecation = Some(value),
                    "sunset" => head.sunset = Some(value),
                    "content-length" => head.content_length = value.parse().unwrap(),
                    _ => {}
                }
            }
        }
        head
    }

    /// Reads one `Content-Length`-framed response.
    fn recv(&mut self) -> (Head, Json) {
        let head = self.read_head();
        let mut body = vec![0u8; head.content_length];
        self.reader.read_exact(&mut body).expect("body");
        let text = String::from_utf8(body).expect("UTF-8 body");
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad body ({e:?}): {text}"));
        (head, json)
    }

    /// Reads one chunked-transfer-encoded response to the end.
    fn recv_chunked(&mut self) -> StreamReply {
        let head = self.read_head();
        assert_eq!(head.transfer_encoding, "chunked", "streams must be chunked");
        let mut chunks = Vec::new();
        loop {
            let mut size_line = String::new();
            self.reader
                .read_line(&mut size_line)
                .expect("chunk size line");
            let size = usize::from_str_radix(size_line.trim(), 16)
                .unwrap_or_else(|_| panic!("bad chunk size line: {size_line:?}"));
            if size == 0 {
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf).expect("final CRLF");
                break;
            }
            let mut payload = vec![0u8; size];
            self.reader.read_exact(&mut payload).expect("chunk payload");
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf).expect("chunk CRLF");
            chunks.push(String::from_utf8(payload).expect("UTF-8 chunk"));
        }
        StreamReply { head, chunks }
    }
}

/// Deterministic pseudo-random CSV (same generator as `streaming_e2e`).
fn gen_csv(rows: usize, attrs: usize, card: u64) -> Vec<u8> {
    let mut out = String::new();
    for a in 0..attrs {
        if a > 0 {
            out.push(',');
        }
        out.push_str(&format!("C{a}"));
    }
    out.push('\n');
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rows {
        for a in 0..attrs {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if a > 0 {
                out.push(',');
            }
            out.push_str(&format!("v{}", (state >> 33) % card));
        }
        out.push('\n');
    }
    out.into_bytes()
}

fn upload(conn: &mut Conn, name: &str, csv: &[u8]) {
    conn.send("POST", &format!("/v1/datasets/{name}"), csv, false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200, "{body:?}");
}

/// The rank key of a streamed heap entry, recovered from its JSON: the
/// error row count first, then the LHS size — enough of the full
/// `(g3_rows, |lhs|, rhs, lhs)` key to check ordering and improvement.
fn entry_key(entry: &Json) -> (usize, usize) {
    let g3_rows = entry.get("g3_rows").unwrap().as_usize().unwrap();
    let fd = entry.get("fd").unwrap().as_str().unwrap();
    let lhs = fd.split(" -> ").next().unwrap();
    let inner = lhs.trim_start_matches('{').trim_end_matches('}');
    let lhs_len = if inner.is_empty() {
        0
    } else {
        inner.split(',').count()
    };
    (g3_rows, lhs_len)
}

/// Splits a ranked stream into (level lines, topk events, trailer).
fn split_stream(objects: &[Json]) -> (Vec<&Json>, Vec<&Json>, &Json) {
    let (trailer, rest) = objects.split_last().expect("non-empty stream");
    assert!(trailer.get("summary").is_some(), "last line is the trailer");
    let mut levels = Vec::new();
    let mut events = Vec::new();
    for obj in rest {
        match obj.get("event").and_then(|e| e.as_str()) {
            Some("topk") => events.push(obj),
            Some(other) => panic!("unknown event tag {other:?}"),
            None => levels.push(obj),
        }
    }
    (levels, events, trailer)
}

#[test]
fn ranked_stream_interleaves_monotone_topk_events() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut conn = Conn::open(addr);
    upload(&mut conn, "deep", &gen_csv(3000, 10, 4));

    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"deep","top_k":8,"stream":true}"#,
        false,
    );
    let reply = conn.recv_chunked();
    assert_eq!(reply.head.status, 200);
    assert_eq!(reply.head.deprecation, None, "/v1 is not deprecated");

    let objects = reply.objects();
    let (levels, events, trailer) = split_stream(&objects);
    assert!(!levels.is_empty(), "ranked streams still carry level lines");
    assert!(
        events.len() >= 2,
        "want repeated heap improvement, got {} topk events",
        events.len()
    );

    // Each snapshot is emitted after its level's line and is internally
    // sorted best-first; successive snapshots only ever improve — the heap
    // grows, and every held position gets a no-worse entry.
    let mut prev_heap: Option<Vec<(usize, usize)>> = None;
    let mut prev_level = 0;
    for ev in &events {
        let level = ev.get("level").unwrap().as_usize().unwrap();
        assert!(level > prev_level, "one snapshot per improved level");
        prev_level = level;
        let heap: Vec<(usize, usize)> = ev
            .get("heap")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(entry_key)
            .collect();
        assert!(heap.len() <= 8, "heap respects k");
        for pair in heap.windows(2) {
            assert!(pair[0] <= pair[1], "heap is ordered best-first: {heap:?}");
        }
        if let Some(prev) = &prev_heap {
            assert!(heap.len() >= prev.len(), "the heap never shrinks");
            for (i, old) in prev.iter().enumerate() {
                assert!(
                    heap[i] <= *old,
                    "position {i} regressed: {:?} after {:?}",
                    heap[i],
                    old
                );
            }
        }
        prev_heap = Some(heap);
    }

    // The trailer's ranked array is the final snapshot verbatim, and the
    // ranked stats ride in the summary.
    let summary = trailer.get("summary").unwrap();
    let ranked = summary.get("ranked").unwrap().as_array().unwrap();
    let last = events
        .last()
        .unwrap()
        .get("heap")
        .unwrap()
        .as_array()
        .unwrap();
    assert_eq!(ranked, last, "trailer heap == last topk snapshot");
    assert_eq!(summary.get("count").unwrap().as_usize(), Some(ranked.len()));
    let stats = summary.get("stats").unwrap();
    for key in ["topk_bound_pruned", "topk_dominated", "topk_improvements"] {
        assert!(stats.get(key).unwrap().as_usize().is_some(), "{key}");
    }
    assert!(stats.get("topk_early_exit_level").is_some());

    // Ranked searches surface in /v1/metrics.
    conn.send("GET", "/v1/metrics", b"", true);
    let (_, metrics) = conn.recv();
    let topk = metrics.get("search").unwrap().get("topk").unwrap();
    assert_eq!(topk.get("searches").unwrap().as_usize(), Some(1));
    assert!(topk.get("improvements").unwrap().as_usize().unwrap() >= ranked.len());

    server.shutdown();
    server.wait();
}

#[test]
fn ranked_cache_hits_replay_identical_bytes_per_k() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "small", &gen_csv(500, 6, 4));

    let mut stream = |body: &[u8]| {
        conn.send("POST", "/v1/discover", body, false);
        conn.recv_chunked().payload()
    };
    let first = stream(br#"{"dataset":"small","top_k":5,"stream":true}"#);
    let replay = stream(br#"{"dataset":"small","top_k":5,"stream":true}"#);
    assert_eq!(
        first, replay,
        "a ranked cache hit must replay the recorded stream byte-for-byte"
    );

    // A different k is a different result — it must not hit the k=5 entry
    // (the top 5 is no proof of the top 3's completeness counters, and the
    // streams genuinely differ).
    let smaller = stream(br#"{"dataset":"small","top_k":3,"stream":true}"#);
    assert_ne!(first, smaller, "cache keys must include k");
    let objects = Json::parse(smaller.lines().last().unwrap()).unwrap();
    let ranked = objects
        .get("summary")
        .unwrap()
        .get("ranked")
        .unwrap()
        .as_array()
        .unwrap();
    assert!(ranked.len() <= 3);

    server.shutdown();
    server.wait();
}

#[test]
fn ranked_streams_leave_legacy_level_lines_unchanged() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "small", &gen_csv(500, 6, 4));

    let mut stream = |body: &[u8]| {
        conn.send("POST", "/v1/discover", body, false);
        let reply = conn.recv_chunked();
        assert_eq!(reply.head.status, 200);
        reply.objects()
    };
    let exact = stream(br#"{"dataset":"small","stream":true}"#);
    let ranked = stream(br#"{"dataset":"small","top_k":6,"stream":true}"#);

    // The exact stream is all untagged level lines plus the trailer — the
    // `event` discriminator exists only on ranked additions.
    let (exact_levels, exact_events, _) = split_stream(&exact);
    assert!(exact_events.is_empty(), "exact streams carry no events");
    let (ranked_levels, ranked_events, _) = split_stream(&ranked);
    assert!(!ranked_events.is_empty());

    // A consumer of the old grammar sees the walk it always saw: the
    // ranked stream's level lines are the exact stream's lines for the
    // same prefix of the lattice — same fields, same dependencies — until
    // the ranked walk's early exit cuts the walk short.
    assert!(!ranked_levels.is_empty());
    assert!(ranked_levels.len() <= exact_levels.len());
    for (got, want) in ranked_levels.iter().zip(&exact_levels) {
        assert_eq!(got.get("level").unwrap(), want.get("level").unwrap());
        assert_eq!(
            got.get("fds").unwrap(),
            want.get("fds").unwrap(),
            "per-level exact dependencies must not change under ranking"
        );
        for key in ["level_secs", "partitions_bytes"] {
            assert!(got.get(key).is_some(), "level line keeps {key}");
        }
        assert!(got.get("ranked").is_none() && got.get("heap").is_none());
    }

    server.shutdown();
    server.wait();
}

#[test]
fn top_k_zero_is_legal_and_immediately_empty() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "small", &gen_csv(200, 5, 3));

    // Streamed: no topk events ever fire, the trailer carries the empty
    // heap, and the walk exits at level 1.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"small","top_k":0,"stream":true}"#,
        false,
    );
    let reply = conn.recv_chunked();
    assert_eq!(reply.head.status, 200);
    let objects = reply.objects();
    let (_, events, trailer) = split_stream(&objects);
    assert!(events.is_empty(), "k = 0 improves nothing");
    let summary = trailer.get("summary").unwrap();
    assert_eq!(summary.get("ranked").unwrap().as_array(), Some(&[][..]));
    assert_eq!(summary.get("count").unwrap().as_usize(), Some(0));
    assert_eq!(
        summary
            .get("stats")
            .unwrap()
            .get("topk_early_exit_level")
            .unwrap()
            .as_usize(),
        Some(1)
    );

    // Buffered: same shape, plus the flat cover is empty too.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"small","top_k":0}"#,
        true,
    );
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200, "{body:?}");
    assert_eq!(body.get("ranked").unwrap().as_array(), Some(&[][..]));
    assert_eq!(body.get("fds").unwrap().as_array(), Some(&[][..]));

    server.shutdown();
    server.wait();
}

#[test]
fn oversized_k_returns_the_whole_pool_without_pruning() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "small", &gen_csv(200, 5, 3));

    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"small","top_k":100000}"#,
        false,
    );
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200, "{body:?}");
    let ranked = body.get("ranked").unwrap().as_array().unwrap();
    assert!(!ranked.is_empty());
    assert!(ranked.len() < 100000, "k larger than any candidate pool");
    let stats = body.get("stats").unwrap();
    // A heap that never fills has no bound to prune against and no reason
    // to stop early.
    assert_eq!(stats.get("topk_bound_pruned").unwrap().as_usize(), Some(0));
    assert!(stats.get("topk_early_exit_level").unwrap().is_null());

    // Every exact minimal dependency is a strict improver, so the exact
    // cover embeds in the unbounded ranked pool with g3 = 0.
    conn.send("POST", "/v1/discover", br#"{"dataset":"small"}"#, true);
    let (_, exact) = conn.recv();
    let exact_fds: Vec<&str> = exact
        .get("fds")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|fd| fd.as_str().unwrap())
        .collect();
    let perfect: Vec<&str> = ranked
        .iter()
        .filter(|e| e.get("g3_rows").unwrap().as_usize() == Some(0))
        .map(|e| e.get("fd").unwrap().as_str().unwrap())
        .collect();
    for fd in &exact_fds {
        assert!(
            perfect.contains(fd),
            "exact dependency {fd} missing from the unbounded ranked pool"
        );
    }

    server.shutdown();
    server.wait();
}

#[test]
fn ranked_mid_stream_disconnect_does_not_kill_the_job() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut conn = Conn::open(addr);
    upload(&mut conn, "deep", &gen_csv(3000, 10, 4));

    // Start a ranked stream, read only the head and the first chunk, then
    // hang up mid-walk.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"deep","top_k":8,"stream":true}"#,
        false,
    );
    let head = conn.read_head();
    assert_eq!(head.status, 200);
    let mut size_line = String::new();
    conn.reader.read_line(&mut size_line).unwrap();
    let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
    let mut first = vec![0u8; size];
    conn.reader.read_exact(&mut first).unwrap();
    drop(conn);

    // The ranked search keeps running and publishes to the cache.
    let mut probe = Conn::open(addr);
    probe.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"deep","top_k":8}"#,
        false,
    );
    let (head, body) = probe.recv();
    assert_eq!(head.status, 200, "{body:?}");
    assert_eq!(
        body.get("cached").unwrap().as_bool(),
        Some(true),
        "the abandoned ranked stream's search must still land in the cache"
    );
    assert!(!body.get("ranked").unwrap().as_array().unwrap().is_empty());
    probe.send("GET", "/v1/health", b"", true);
    let (head, _) = probe.recv();
    assert_eq!(
        head.status, 200,
        "server stays healthy after the disconnect"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn request_body_rejections_use_the_unknown_field_slug() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());

    // A typo'd field gets its own slug and names the field.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"x","bogus":1}"#,
        false,
    );
    let (head, body) = conn.recv();
    assert_eq!(head.status, 400);
    let err = body.get("error").unwrap();
    assert_eq!(err.get("code").unwrap().as_str(), Some("unknown_field"));
    assert_eq!(
        err.get("message").unwrap().as_str(),
        Some("unknown field `bogus`")
    );

    // Asking for two modes at once is invalid, not unknown.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"x","top_k":2,"epsilon":0.1}"#,
        false,
    );
    let (head, body) = conn.recv();
    assert_eq!(head.status, 400);
    let err = body.get("error").unwrap();
    assert_eq!(err.get("code").unwrap().as_str(), Some("invalid-body"));
    assert!(err
        .get("message")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("mutually exclusive"));

    // Legacy `/discover` never grew `top_k`: flat-string 400, unchanged.
    conn.send("POST", "/discover", br#"{"dataset":"x","top_k":2}"#, true);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 400);
    assert_eq!(head.deprecation.as_deref(), Some("true"));
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("top_k"));

    server.shutdown();
    server.wait();
}

#[test]
fn legacy_routes_announce_their_sunset() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());

    conn.send("GET", "/health", b"", false);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 200);
    assert_eq!(head.deprecation.as_deref(), Some("true"));
    assert_eq!(
        head.sunset.as_deref(),
        Some("Sun, 01 Aug 2027 00:00:00 GMT"),
        "legacy routes carry a fixed Sunset date next to Deprecation"
    );

    conn.send("GET", "/v1/health", b"", true);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 200);
    assert_eq!(head.deprecation, None);
    assert_eq!(head.sunset, None, "/v1 never sunsets");

    server.shutdown();
    server.wait();
}
