//! End-to-end tests for the `/v1` API: NDJSON streaming over chunked
//! transfer encoding, versioned routing with the error envelope, dataset
//! detail/delete, and the `Deprecation` header on legacy paths — all over
//! real loopback sockets with a hand-rolled chunked-decoding client.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use tane_server::{Server, ServerConfig};
use tane_util::Json;

/// One persistent client connection speaking HTTP/1.1.
struct Conn {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

/// Response head as the client saw it.
struct Head {
    status: u16,
    connection: String,
    content_type: String,
    transfer_encoding: String,
    deprecation: Option<String>,
    content_length: usize,
}

/// One fully-read chunked response: the chunk payloads in arrival order,
/// each stamped with when its bytes landed.
struct StreamReply {
    head: Head,
    chunks: Vec<String>,
    arrived: Vec<Instant>,
}

impl StreamReply {
    /// The NDJSON objects of the stream, parsed.
    fn objects(&self) -> Vec<Json> {
        self.chunks
            .concat()
            .lines()
            .map(|line| Json::parse(line).unwrap_or_else(|e| panic!("bad line ({e:?}): {line}")))
            .collect()
    }

    fn payload(&self) -> String {
        self.chunks.concat()
    }
}

impl Conn {
    fn open(addr: SocketAddr) -> Conn {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        let reader = BufReader::new(stream.try_clone().unwrap());
        Conn { stream, reader }
    }

    fn send(&mut self, method: &str, path: &str, body: &[u8], close: bool) {
        self.send_with_content_type(method, path, body, close, "application/json");
    }

    fn send_with_content_type(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
        close: bool,
        content_type: &str,
    ) {
        let conn_header = if close { "connection: close\r\n" } else { "" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: localhost\r\n{conn_header}content-type: {content_type}\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes()).unwrap();
        self.stream.write_all(body).unwrap();
    }

    fn read_head(&mut self) -> Head {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.get(..3))
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line: {line:?}"));
        let mut head = Head {
            status,
            connection: String::new(),
            content_type: String::new(),
            transfer_encoding: String::new(),
            deprecation: None,
            content_length: 0,
        };
        loop {
            line.clear();
            self.reader.read_line(&mut line).expect("header line");
            let trimmed = line.trim_end_matches(['\r', '\n']);
            if trimmed.is_empty() {
                break;
            }
            if let Some((name, value)) = trimmed.split_once(':') {
                let value = value.trim().to_string();
                match name.trim().to_ascii_lowercase().as_str() {
                    "connection" => head.connection = value,
                    "content-type" => head.content_type = value,
                    "transfer-encoding" => head.transfer_encoding = value,
                    "deprecation" => head.deprecation = Some(value),
                    "content-length" => head.content_length = value.parse().unwrap(),
                    _ => {}
                }
            }
        }
        head
    }

    /// Reads one `Content-Length`-framed response.
    fn recv(&mut self) -> (Head, Json) {
        let head = self.read_head();
        let mut body = vec![0u8; head.content_length];
        self.reader.read_exact(&mut body).expect("body");
        let text = String::from_utf8(body).expect("UTF-8 body");
        let json = Json::parse(&text).unwrap_or_else(|e| panic!("bad body ({e:?}): {text}"));
        (head, json)
    }

    /// Reads one chunked-transfer-encoded response, chunk by chunk, until
    /// the terminating zero-length chunk.
    fn recv_chunked(&mut self) -> StreamReply {
        let head = self.read_head();
        assert_eq!(head.transfer_encoding, "chunked", "streams must be chunked");
        let mut chunks = Vec::new();
        let mut arrived = Vec::new();
        loop {
            let mut size_line = String::new();
            self.reader
                .read_line(&mut size_line)
                .expect("chunk size line");
            let size = usize::from_str_radix(size_line.trim(), 16)
                .unwrap_or_else(|_| panic!("bad chunk size line: {size_line:?}"));
            if size == 0 {
                let mut crlf = [0u8; 2];
                self.reader.read_exact(&mut crlf).expect("final CRLF");
                assert_eq!(&crlf, b"\r\n");
                arrived.push(Instant::now());
                break;
            }
            let mut payload = vec![0u8; size];
            self.reader.read_exact(&mut payload).expect("chunk payload");
            arrived.push(Instant::now());
            let mut crlf = [0u8; 2];
            self.reader.read_exact(&mut crlf).expect("chunk CRLF");
            assert_eq!(&crlf, b"\r\n");
            chunks.push(String::from_utf8(payload).expect("UTF-8 chunk"));
        }
        StreamReply {
            head,
            chunks,
            arrived,
        }
    }
}

/// A deterministic pseudo-random CSV: `attrs` columns of cardinality
/// `card`. Low cardinality pushes candidate keys deep into the lattice, so
/// the search has many levels and level 1 finishes far ahead of the whole.
fn gen_csv(rows: usize, attrs: usize, card: u64) -> Vec<u8> {
    let mut out = String::new();
    for a in 0..attrs {
        if a > 0 {
            out.push(',');
        }
        out.push_str(&format!("C{a}"));
    }
    out.push('\n');
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for _ in 0..rows {
        for a in 0..attrs {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if a > 0 {
                out.push(',');
            }
            out.push_str(&format!("v{}", (state >> 33) % card));
        }
        out.push('\n');
    }
    out.into_bytes()
}

fn upload(conn: &mut Conn, name: &str, csv: &[u8]) {
    conn.send("POST", &format!("/v1/datasets/{name}"), csv, false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200, "{body:?}");
}

#[test]
fn stream_delivers_levels_in_lattice_order_before_completion() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut conn = Conn::open(addr);
    upload(&mut conn, "deep", &gen_csv(3000, 10, 4));

    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"deep","stream":true}"#,
        false,
    );
    let reply = conn.recv_chunked();
    assert_eq!(reply.head.status, 200);
    assert_eq!(reply.head.content_type, "application/x-ndjson");
    assert_eq!(reply.head.deprecation, None, "/v1 is not deprecated");

    let objects = reply.objects();
    let (levels, trailer) = objects.split_at(objects.len() - 1);
    assert!(
        levels.len() >= 3,
        "want a multi-level lattice, got {} levels",
        levels.len()
    );
    // Level objects arrive in lattice order, 1, 2, 3, …, each complete.
    for (i, level) in levels.iter().enumerate() {
        assert_eq!(
            level.get("level").unwrap().as_usize(),
            Some(i + 1),
            "{level:?}"
        );
        assert!(level.get("fds").unwrap().as_array().is_some());
        assert!(level.get("level_secs").unwrap().as_f64().is_some());
        assert!(level.get("partitions_bytes").unwrap().as_usize().is_some());
    }
    let summary = trailer[0]
        .get("summary")
        .unwrap_or_else(|| panic!("{:?}", trailer[0]));
    assert_eq!(summary.get("dataset").unwrap().as_str(), Some("deep"));

    // Early delivery, asserted against the search's own timings rather
    // than sleeps: the first level line left the server before level 2+
    // were computed, so the gap between its arrival and the trailer's must
    // cover a solid fraction of the post-level-1 search time reported in
    // the trailer's stats.
    let level_secs: Vec<f64> = summary
        .get("stats")
        .unwrap()
        .get("level_secs")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_f64().unwrap())
        .collect();
    let after_first: f64 = level_secs[1..].iter().sum();
    let gap = (*reply.arrived.last().unwrap() - reply.arrived[0]).as_secs_f64();
    assert!(
        gap >= 0.5 * after_first,
        "first level must arrive while later levels compute: gap {gap:.4}s vs {after_first:.4}s of post-level-1 search"
    );

    // The streamed cover is exactly the buffered cover.
    let mut streamed: Vec<String> = levels
        .iter()
        .flat_map(|l| l.get("fds").unwrap().as_array().unwrap().iter())
        .map(|fd| fd.as_str().unwrap().to_string())
        .collect();
    streamed.sort();
    conn.send("POST", "/v1/discover", br#"{"dataset":"deep"}"#, false);
    let (head, buffered) = conn.recv();
    assert_eq!(head.status, 200);
    let mut expected: Vec<String> = buffered
        .get("fds")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|fd| fd.as_str().unwrap().to_string())
        .collect();
    expected.sort();
    assert_eq!(
        streamed, expected,
        "level-by-level union must equal the buffered cover"
    );
    assert_eq!(
        summary.get("count").unwrap().as_usize(),
        Some(expected.len()),
        "trailer count agrees"
    );

    // The stream counters surfaced in /v1/metrics.
    conn.send("GET", "/v1/metrics", b"", true);
    let (_, metrics) = conn.recv();
    let stream = metrics.get("stream").unwrap();
    assert_eq!(
        stream.get("levels_streamed").unwrap().as_usize(),
        Some(levels.len())
    );
    assert!(stream.get("stream_bytes").unwrap().as_usize().unwrap() >= reply.payload().len());
    assert!(
        stream
            .get("first_level_latency_secs")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );

    server.shutdown();
    server.wait();
}

#[test]
fn cache_hits_and_followers_replay_identical_bytes() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut conn = Conn::open(addr);
    upload(&mut conn, "small", &gen_csv(500, 6, 4));

    // Two concurrent streams of the same query: one claims and streams
    // live, the other follows the flight and replays the recorded lines.
    let live = std::thread::spawn(move || {
        let mut c = Conn::open(addr);
        c.send(
            "POST",
            "/v1/discover",
            br#"{"dataset":"small","stream":true}"#,
            true,
        );
        c.recv_chunked().payload()
    });
    let follow = std::thread::spawn(move || {
        let mut c = Conn::open(addr);
        c.send(
            "POST",
            "/v1/discover",
            br#"{"dataset":"small","stream":true}"#,
            true,
        );
        c.recv_chunked().payload()
    });
    let (a, b) = (live.join().unwrap(), follow.join().unwrap());
    assert_eq!(
        a, b,
        "live stream and single-flight follower must be byte-identical"
    );

    // A later cache hit replays the same bytes again.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"small","stream":true}"#,
        true,
    );
    let replay = conn.recv_chunked();
    assert_eq!(
        replay.payload(),
        a,
        "cache-hit replay must be byte-identical"
    );
    assert!(
        !replay.payload().contains("\"cached\""),
        "stream objects carry no cached flag — that is what makes replays identical"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn streaming_composes_with_keep_alive() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "small", &gen_csv(500, 6, 4));

    // A finished chunked body leaves the connection reusable: stream,
    // then keep talking on the same socket.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"small","stream":true}"#,
        false,
    );
    let reply = conn.recv_chunked();
    assert_eq!(reply.head.status, 200);
    assert_eq!(reply.head.connection, "keep-alive");

    conn.send("GET", "/v1/health", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200);
    assert_eq!(body.get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(head.deprecation, None);

    // A second stream on the same connection still frames correctly.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"small","stream":true}"#,
        false,
    );
    let second = conn.recv_chunked();
    assert_eq!(second.payload(), reply.payload());

    // Legacy paths still work on this connection — and say so.
    conn.send("GET", "/health", b"", true);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 200);
    assert_eq!(
        head.deprecation.as_deref(),
        Some("true"),
        "legacy paths carry Deprecation"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn mid_stream_disconnect_does_not_kill_the_job() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let mut conn = Conn::open(addr);
    upload(&mut conn, "deep", &gen_csv(3000, 10, 4));

    // Start a stream, read only the head and the first chunk, hang up.
    conn.send(
        "POST",
        "/v1/discover",
        br#"{"dataset":"deep","stream":true}"#,
        false,
    );
    let head = conn.read_head();
    assert_eq!(head.status, 200);
    let mut size_line = String::new();
    conn.reader.read_line(&mut size_line).unwrap();
    let size = usize::from_str_radix(size_line.trim(), 16).unwrap();
    let mut first = vec![0u8; size];
    conn.reader.read_exact(&mut first).unwrap();
    drop(conn);

    // The worker keeps searching and publishes to the cache: a buffered
    // query for the same key coalesces onto (or hits) that flight and is
    // answered from it.
    let mut probe = Conn::open(addr);
    probe.send("POST", "/v1/discover", br#"{"dataset":"deep"}"#, false);
    let (head, body) = probe.recv();
    assert_eq!(head.status, 200, "{body:?}");
    assert_eq!(
        body.get("cached").unwrap().as_bool(),
        Some(true),
        "the abandoned stream's search must still land in the cache"
    );
    probe.send("GET", "/v1/health", b"", true);
    let (head, _) = probe.recv();
    assert_eq!(
        head.status, 200,
        "server stays healthy after the disconnect"
    );

    server.shutdown();
    server.wait();
}

#[test]
fn v1_errors_use_the_envelope_and_legacy_stays_flat() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());

    // Unknown dataset: 404 + slug under /v1, flat string on legacy.
    conn.send("POST", "/v1/discover", br#"{"dataset":"nope"}"#, false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 404);
    assert_eq!(head.deprecation, None);
    let err = body.get("error").unwrap();
    assert_eq!(err.get("code").unwrap().as_str(), Some("unknown-dataset"));
    assert_eq!(
        err.get("message").unwrap().as_str(),
        Some("unknown dataset `nope`")
    );

    conn.send("POST", "/discover", br#"{"dataset":"nope"}"#, false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 404);
    assert_eq!(head.deprecation.as_deref(), Some("true"));
    assert_eq!(
        body.get("error").unwrap().as_str(),
        Some("unknown dataset `nope`"),
        "legacy error bodies stay flat strings"
    );

    // Malformed body: invalid-body.
    conn.send("POST", "/v1/discover", b"{not json", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 400);
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("invalid-body")
    );

    // Wrong media type on /v1/discover: 415. Legacy never checks.
    conn.send_with_content_type(
        "POST",
        "/v1/discover",
        br#"{"dataset":"x"}"#,
        false,
        "text/csv",
    );
    let (head, body) = conn.recv();
    assert_eq!(head.status, 415, "{body:?}");
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unsupported-media-type")
    );
    conn.send_with_content_type(
        "POST",
        "/discover",
        br#"{"dataset":"nope"}"#,
        false,
        "text/csv",
    );
    let (head, _) = conn.recv();
    assert_eq!(head.status, 404, "legacy /discover ignores content-type");

    // `stream` is a /v1 field; legacy rejects it as unknown.
    conn.send(
        "POST",
        "/discover",
        br#"{"dataset":"x","stream":true}"#,
        false,
    );
    let (head, body) = conn.recv();
    assert_eq!(head.status, 400);
    assert!(body
        .get("error")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("stream"));

    // Unknown endpoints and bad methods get slugs too.
    conn.send("GET", "/v1/nope", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 404);
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unknown-endpoint")
    );
    conn.send("PUT", "/v1/discover", b"", true);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 405);
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("method-not-allowed")
    );

    server.shutdown();
    server.wait();
}

#[test]
fn dataset_detail_and_delete() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "mine", &gen_csv(50, 4, 3));

    // Detail: schema, shape, identity.
    conn.send("GET", "/v1/datasets/mine", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200, "{body:?}");
    assert_eq!(body.get("dataset").unwrap().as_str(), Some("mine"));
    assert_eq!(body.get("rows").unwrap().as_usize(), Some(50));
    assert_eq!(body.get("attrs").unwrap().as_usize(), Some(4));
    let attributes: Vec<&str> = body
        .get("attributes")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_str().unwrap())
        .collect();
    assert_eq!(attributes, ["C0", "C1", "C2", "C3"]);
    assert_eq!(body.get("builtin").unwrap().as_bool(), Some(false));
    let hash = body
        .get("content_hash")
        .unwrap()
        .as_str()
        .unwrap()
        .to_string();
    assert_eq!(hash.len(), 16);

    // Built-ins resolve too, flagged as such.
    conn.send("GET", "/v1/datasets/lymphography", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200);
    assert_eq!(body.get("rows").unwrap().as_usize(), Some(148));
    assert_eq!(body.get("builtin").unwrap().as_bool(), Some(true));

    // Deleting an upload works once, then 404s; built-ins are 403.
    conn.send("DELETE", "/v1/datasets/mine", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 200, "{body:?}");
    assert_eq!(body.get("removed").unwrap().as_bool(), Some(true));
    conn.send("GET", "/v1/datasets/mine", b"", false);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 404);
    conn.send("DELETE", "/v1/datasets/mine", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 404);
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("unknown-dataset")
    );
    conn.send("DELETE", "/v1/datasets/lymphography", b"", false);
    let (head, body) = conn.recv();
    assert_eq!(head.status, 403, "{body:?}");
    assert_eq!(
        body.get("error").unwrap().get("code").unwrap().as_str(),
        Some("builtin-dataset")
    );

    // Legacy has no detail/delete: unchanged 404/405 there.
    conn.send("GET", "/datasets/lymphography", b"", false);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 404);
    conn.send("DELETE", "/datasets/lymphography", b"", true);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 405);

    server.shutdown();
    server.wait();
}

#[test]
fn v1_success_bodies_match_legacy_byte_for_byte() {
    let server = Server::start("127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut conn = Conn::open(server.local_addr());
    upload(&mut conn, "small", &gen_csv(200, 5, 3));

    // Warm the cache so both calls are answered from the same entry (the
    // `cached` flag would otherwise differ).
    conn.send("POST", "/v1/discover", br#"{"dataset":"small"}"#, false);
    let (head, _) = conn.recv();
    assert_eq!(head.status, 200);

    let mut read_raw = |path: &str| {
        conn.send("POST", path, br#"{"dataset":"small"}"#, false);
        let head = conn.read_head();
        let mut body = vec![0u8; head.content_length];
        conn.reader.read_exact(&mut body).unwrap();
        (head, String::from_utf8(body).unwrap())
    };
    let (v1_head, v1_body) = read_raw("/v1/discover");
    let (legacy_head, legacy_body) = read_raw("/discover");
    assert_eq!(v1_head.status, 200);
    assert_eq!(legacy_head.status, 200);
    assert_eq!(
        v1_body, legacy_body,
        "buffered /v1/discover is the same document"
    );
    assert_eq!(v1_head.deprecation, None);
    assert_eq!(legacy_head.deprecation.as_deref(), Some("true"));

    server.shutdown();
    server.wait();
}
