#!/usr/bin/env bash
# Thread-scaling benchmark of the parallel search runtime: the same
# generated workload at 1/2/4/8 pool workers on the memory and disk
# backends. Writes structured results to BENCH_pr7.json at the repo
# root (the text table goes to stdout). Pass --fast for the trimmed
# dataset and --assert-scaling to fail unless 4 threads beat 2 on the
# memory backend (skipped loudly on machines with fewer than 4 cores);
# any extra arguments are forwarded to `repro scaling`.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p tane-bench
./target/release/repro scaling --json BENCH_pr7.json "$@"
