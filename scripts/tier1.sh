#!/usr/bin/env bash
# Tier-1 verification: exactly what CI/the driver runs, plus an explicit
# build of the server crate (a non-default workspace member on some cargo
# invocations) and an explicit run of the server e2e suites (loopback
# keep-alive/pipelining/framing + service concurrency/overload), so the
# persistent-connection path is exercised even when a filtered `cargo
# test` invocation would skip it. Run from the repo root; one command is
# the whole tier-1 gate.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo build -p tane-server
cargo test -q -p tane-server --test keepalive_e2e --test service_e2e

echo "tier1: OK"
