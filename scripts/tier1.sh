#!/usr/bin/env bash
# Tier-1 verification: exactly what CI/the driver runs, plus an explicit
# build of the server crate (a non-default workspace member on some cargo
# invocations). Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo build -p tane-server

echo "tier1: OK"
