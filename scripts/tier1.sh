#!/usr/bin/env bash
# Tier-1 verification: exactly what CI/the driver runs, plus static
# gates (rustfmt + clippy with warnings denied), an explicit build of
# the server crate (a non-default workspace member on some cargo
# invocations), and an explicit run of the server e2e suites (loopback
# keep-alive/pipelining/framing + service concurrency/overload +
# /v1 streaming), so the persistent-connection and chunked-streaming
# paths are exercised even when a filtered `cargo test` invocation
# would skip them. Run from the repo root; one command is the whole
# tier-1 gate.
set -euo pipefail
cd "$(dirname "$0")/.."

# --full additionally runs the dynamic checkers (Miri + TSan via
# scripts/sanitize.sh) after the static gate; they degrade to a loud
# skip on toolchains without nightly, so --full is safe anywhere.
FULL=0
if [[ "${1:-}" == "--full" ]]; then
    FULL=1
    shift
fi

cargo fmt --check
cargo clippy --workspace -- -D warnings
# Workspace invariants (unsafe-audit, determinism, lock-discipline,
# lock-graph, atomics-audit, error-hygiene): zero violations, enforced
# by the in-tree analyzer — including the derived lock-order graph and
# the interprocedural determinism taint.
cargo run -q -p tane-lint --release

if [[ "$FULL" == "1" ]]; then
    ./scripts/sanitize.sh
fi

cargo build --release
cargo test -q
# Work-stealing pool scaling gate: a cheap small-dataset scaling run that
# fails if 4 threads do not beat 2 on the memory backend. The check skips
# (loudly) on machines with fewer than 4 cores, where the comparison is
# meaningless; determinism down the thread column is asserted either way.
cargo build --release -p tane-bench
./target/release/repro scaling --fast --assert-scaling > /dev/null
# Segment-store fetch paths: funnel vs direct at 1..8 workers must be
# identical in N, products, and every disk I/O column (asserted inside the
# runner on any machine); with >= 4 cores, direct 8-thread wall time must
# beat the worker-0 funnel.
./target/release/repro disk-scaling --fast --assert-scaling > /dev/null
# Concurrent shared-read store contract: byte-identical partitions under
# an 8-thread flood, with single-flight + phase pinning keeping the
# disk-read counters exact.
cargo test -q -p tane-partition --test concurrent_store
# Ranked search gates: a cheap bounded-vs-unbounded run that asserts the
# bounded heap is a prefix of the unbounded ranking and never adds work,
# and the brute-force pruning-soundness oracle (heap == definitional-g3
# pool prefix, thread-invariant, early exit answer-preserving).
./target/release/repro topk --fast > /dev/null
cargo test -q -p tane-core --test topk_oracle
cargo build -p tane-server
cargo test -q -p tane-server --test keepalive_e2e --test service_e2e --test streaming_e2e --test ranked_streaming_e2e --test store_fault_e2e
# Parallel-runtime determinism: threads in {1,2,4,8} must be byte-identical
# on both storage backends, exact and approximate mode.
cargo test -q -p tane-core --test parallel_determinism
# Incremental determinism: delta-engine runs (merge-and-reverify) must be
# byte-identical to from-scratch runs at any thread count, exact and
# approximate, and must do strictly fewer partition products.
cargo test -q -p tane-delta --test incremental_determinism
cargo test -q -p tane-server --test registry_lifecycle_e2e

echo "tier1: OK"
