#!/usr/bin/env bash
# Dynamic UB/race checking for the workspace's two unsafe sites (the
# worker-pool job-pointer transmute and the signal hookup) and the
# server's lock usage. Both checkers need a nightly toolchain, which the
# offline build image may not carry — every stage degrades to a loud
# skip rather than a failure, so this script is safe to run anywhere.
#
#   Miri           : interprets the util test suite, catching UB in the
#                    pool's pointer lifecycle.
#   ThreadSanitizer: rebuilds util+server tests with -Zsanitizer=thread,
#                    catching data races the type system can't see.
#
# Tier-1 does not depend on this script; it is a deeper, slower gate for
# toolchains that can run it. The static analogue (`cargo run -p
# tane-lint`) runs everywhere, always.
set -uo pipefail
cd "$(dirname "$0")/.."

status=0

have_nightly() {
    rustup toolchain list 2>/dev/null | grep -q nightly
}

if ! command -v rustup >/dev/null 2>&1 || ! have_nightly; then
    echo "sanitize: no nightly toolchain available — skipping Miri and TSan"
    echo "sanitize: SKIPPED (static checks still enforced by tane-lint)"
    exit 0
fi

echo "== Miri: tane-util (worker pool unsafe sites) =="
if rustup component list --toolchain nightly 2>/dev/null | grep -q "miri.*(installed)"; then
    if ! cargo +nightly miri test -p tane-util; then
        echo "sanitize: Miri FAILED"
        status=1
    fi
else
    echo "sanitize: Miri component not installed — skipping"
fi

echo "== ThreadSanitizer: tane-util + tane-server =="
if rustup component list --toolchain nightly 2>/dev/null | grep -q "rust-src.*(installed)"; then
    if ! RUSTFLAGS="-Zsanitizer=thread" cargo +nightly test -Zbuild-std \
        --target "$(rustc -vV | sed -n 's/^host: //p')" \
        -p tane-util -p tane-server; then
        echo "sanitize: ThreadSanitizer FAILED"
        status=1
    fi
else
    echo "sanitize: rust-src component not installed — skipping TSan"
fi

if [ "$status" -eq 0 ]; then
    echo "sanitize: OK"
fi
exit "$status"
